"""Discrete-event simulation kernel.

Everything in this reproduction — hosts, hypervisors, the VEEM, the Service
Manager's rule engine, monitoring probes and the Condor-like grid — runs on
this kernel. It provides a calendar-queue event loop with generator-based
processes, in the style of SimPy but self-contained.

Design notes
------------
* Time is a ``float`` in seconds. The kernel makes no assumption about wall
  clock; experiments run simulated hours in milliseconds of CPU time.
* Processes are Python generators that ``yield`` *waitables*: :class:`Timeout`,
  :class:`Event`, :class:`Process` (join), :class:`AnyOf`/:class:`AllOf`
  combinators, or acquisition requests from :mod:`repro.sim.resources`.
* The scheduler is a calendar queue (a degenerate one-level timer wheel keyed
  by exact timestamps): events land in a per-timestamp FIFO bucket and a small
  heap orders only the *distinct* timestamps. Provisioning workloads are
  heavily biased toward short delays and same-instant cascades — thousands of
  events share each timestamp — so the heap stays tiny while the per-event
  cost collapses to a list append. While the drain loop is inside a
  timestamp, zero-delay events are appended straight onto the live batch
  (the *cascade batcher*): an event chain at one instant costs one queue
  transaction instead of a heap push/pop per link.
* Event ordering is deterministic and identical to a binary-heap scheduler
  ordered by ``(time, priority, seq)``: buckets are split per priority
  (URGENT drains before NORMAL at each timestamp) and appends happen in
  creation order, so FIFO bucket order *is* seq order without materialising a
  sequence number. ``Environment(reference=True)`` builds the original heap
  kernel — kept as a differential oracle; seeded runs replay identically on
  both.
* Cancellation is lazy: an abandoned event (an interrupted process's old
  timeout, an ``AnyOf`` loser) is marked ``dead`` and skipped when its bucket
  drains, rather than being dug out of the queue. Skips are counted in
  ``kernel.events.dead_skipped``.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "Interrupt",
    "StopProcess",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Environment",
]


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised by a process to terminate itself early with a return value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------

#: Sentinel for "event has not yet been given a value".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled to fire and carrying a value), and *processed* (callbacks run).
    Events may succeed (:meth:`succeed`) or fail (:meth:`fail`); waiting on a
    failed event re-raises its exception inside the waiting process.

    ``__slots__`` on the kernel's event classes keeps per-event memory flat
    and attribute access cheap — simulations allocate millions of these.
    Subclasses outside the kernel (e.g. :mod:`repro.sim.resources`) declare
    no slots and so keep an instance ``__dict__`` for their extra fields.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "dead")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: If a failed event is never waited on, its exception would be lost;
        #: the kernel re-raises it at the end of the run unless ``defused``.
        self.defused = False
        #: Lazily cancelled: skipped (and counted) at dispatch if no
        #: callbacks remain. See :meth:`cancel`.
        self.dead = False

    # -- state ---------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Chain: trigger this event with the state of another event."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self)

    def cancel(self) -> None:
        """Abandon the event: mark it dead so the drain loop can skip it.

        A dead event stays queued until its timestamp is reached; if no
        callbacks remain when it pops, the kernel skips the dispatch (counted
        in ``kernel.events.dead_skipped``). Attaching a callback afterwards
        revives it — cancellation is lazy, never destructive. A cancelled
        failed event is treated as defused.
        """
        self.dead = True

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    The constructor hand-inlines both :meth:`Event.__init__` and the default
    kernel's bucket insert: timeout creation is the single hottest allocation
    site in the harness (one per probe tick, per retry, per rule cooldown).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.dead = False
        self.delay = delay
        if env.__class__ is Environment:
            if not delay and env._draining:
                env._live_n.append(self)
            else:
                t = env._now + delay
                buckets = env._buckets
                bucket = buckets.get(t)
                if bucket is not None:
                    bucket.append(self)
                else:
                    buckets[t] = [self]
                    heappush(env._times, t)
        else:
            env._schedule(self, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


def _make_timeout_factory(env: "Environment") -> Callable[..., Timeout]:
    """Build the environment's ``timeout(delay, value=None)`` factory.

    A plain closure over the environment rather than a bound method: it
    allocates the Timeout with ``object.__new__`` and writes the slots
    directly, skipping both the ``type.__call__`` dispatch and the
    ``__init__`` wrapper frame — timeout creation is the hottest call in
    the harness, and this shaves the constant per-call machinery off it.
    The closure is specialised at environment construction: the default
    kernel gets the inlined bucket insert, any other kernel routes through
    its ``_schedule``.
    """
    new = object.__new__
    if env.__class__ is Environment:
        def timeout(delay: float, value: Any = None) -> Timeout:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            self = new(Timeout)
            self.env = env
            self.callbacks = []
            self._value = value
            self._ok = True
            self.defused = False
            self.dead = False
            self.delay = delay
            if not delay and env._draining:
                env._live_n.append(self)
            else:
                t = env._now + delay
                buckets = env._buckets
                bucket = buckets.get(t)
                if bucket is not None:
                    bucket.append(self)
                else:
                    buckets[t] = [self]
                    heappush(env._times, t)
            return self
    else:
        def timeout(delay: float, value: Any = None) -> Timeout:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            self = new(Timeout)
            self.env = env
            self.callbacks = []
            self._value = value
            self._ok = True
            self.defused = False
            self.dead = False
            self.delay = delay
            env._schedule(self, delay)
            return self
    return timeout


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The generator's ``return`` value (or :class:`StopProcess` value) becomes
    the event value, so ``yield some_process`` implements *join*.
    """

    __slots__ = ("_generator", "_send", "_resume_cb", "name", "_target",
                 "_init_event")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(env)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self._send = generator.send
        # The bound method is materialised once: parking appends it to an
        # event's callback list on every yield, and ``obj.method`` otherwise
        # allocates a fresh bound-method object each evaluation.
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None  # event the process is waiting on
        # Kick off on a zero-delay "initialize" event, at URGENT priority so
        # the process starts before same-time normal events (in particular
        # interrupts delivered in the same instant it was created).
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume_cb)
        env._schedule(init, priority=Environment.URGENT)
        self._init_event = init
        self._target = init

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a process that has not yet had its first resume is
        legal: the init event (scheduled URGENT) starts the generator first,
        so the interrupt lands on its first yield — throwing into an
        unstarted generator would bypass the process's try/except.

        The victim is unsubscribed from its abandoned wait target at
        *delivery* time, not here: when interrupting a not-yet-started
        process the first-yield target does not even exist yet, and a
        target left subscribed would later resume the process at the wrong
        yield with a stale value.
        """
        if self.triggered:
            raise SimError(f"{self.name} has already terminated")
        # Deliver the interrupt via an immediately-scheduled failed event that
        # detaches the abandoned wait, then routes through the resume logic.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._on_interrupt)
        self.env._schedule(event)

    # -- internal ------------------------------------------------------------
    def _on_interrupt(self, event: Event) -> None:
        if self._value is not _PENDING:
            return      # stale: the process finished before delivery
        target = self._target
        if (target is not None and target is not self._init_event
                and target.callbacks is not None):
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
            else:
                # The abandoned wait target stays queued; if we were its only
                # watcher and it is a plain Timeout (can never fail, carries
                # no side effects), mark it dead so the drain loop skips it.
                if not target.callbacks and type(target) is Timeout:
                    target.dead = True
        self._resume(event)

    def _resume(self, event: Event) -> None:
        # ``self._value is not _PENDING`` is ``triggered`` with the property
        # descriptor peeled off — this method runs once per event.
        if self._value is not _PENDING:
            # Stale wakeup: the process finished before this event fired
            # (e.g. an interrupt aimed at a process that completed during
            # its very first resume). Nothing to deliver to.
            if not event._ok:
                event.defused = True
            return
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._send(event._value)
                else:
                    event.defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._finish(True, stop.value)
                break
            except StopProcess as stop:
                self._generator.close()
                self._finish(True, stop.value)
                break
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self._finish(False, exc)
                break

            # Duck-typed in place of ``isinstance(next_event, Event)``: every
            # Event exposes ``callbacks``, and the miss path (yielding a
            # non-event) is a programming error where the try's cost is
            # irrelevant. try/except is free until it throws.
            try:
                cbs = next_event.callbacks
            except AttributeError:
                exc = SimError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                self._finish(False, exc)
                break

            if cbs is not None:
                # Event still pending/triggered-but-unprocessed: park here.
                cbs.append(self._resume_cb)
                self._target = next_event
                break
            # Event already processed: loop and deliver its value at once.
            event = next_event

        env._active_process = None

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        if not ok and isinstance(value, BaseException):
            # Re-raised at run() unless some waiter defuses it.
            self.defused = False
        self.env._schedule(self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'dead' if self.triggered else 'alive'}>"


class _Condition(Event):
    """Base for AnyOf / AllOf combinators."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for e in self.events:
            if e.env is not env:
                raise SimError("cannot mix events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for e in self.events:
            if e.callbacks is None:
                self._check(e)
            else:
                e.callbacks.append(self._check)
        if self.triggered:
            # Triggered mid-subscription: events visited after the trigger
            # still got our callback; detach the losers now.
            self._discard_pending()

    def _collect(self) -> dict[Event, Any]:
        # Use *processed* (callbacks already run), not *triggered*: a Timeout
        # carries its value from construction and so is "triggered" before it
        # has actually fired.
        return {
            e: e._value for e in self.events
            if e.processed and e._ok
        }

    def _discard_pending(self) -> None:
        """Lazy cancellation of losers once the condition's outcome is fixed.

        Only plain Timeouts are detached and dead-marked: a Timeout can never
        fail, so skipping its dispatch cannot swallow an error the kernel
        would otherwise raise, and nothing else observes it. Other pending
        events keep their callback — for them ``_check`` degrades to a no-op.
        """
        check = self._check
        for e in self.events:
            cbs = e.callbacks
            if cbs is not None and type(e) is Timeout:
                try:
                    cbs.remove(check)
                except ValueError:
                    continue
                if not cbs:
                    e.dead = True

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of the given events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())
        self._discard_pending()


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            self._discard_pending()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


# ---------------------------------------------------------------------------
# Environment
# ---------------------------------------------------------------------------

#: Reference-kernel heap entries are plain ``(time, priority, seq, event)``
#: tuples — tuple comparison is implemented in C and ``seq`` is unique, so
#: ordering never reaches the (incomparable) event and heap ops stay cheap.
_QueueEntry = tuple[float, int, int, Event]


class Environment:
    """The simulation environment: clock plus event queue.

    The default scheduler is a calendar queue (see the module docstring);
    ``Environment(reference=True)`` builds the original binary-heap kernel
    instead — bit-identical event ordering, kept as the differential oracle
    the Hypothesis suite replays seeded runs against.

    Example
    -------
    >>> env = Environment()
    >>> log = []
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     log.append(env.now)
    >>> _ = env.process(proc(env))
    >>> env.run()
    >>> log
    [5.0]
    """

    #: Priority for "urgent" events (used internally for initialisation).
    URGENT = 0
    NORMAL = 1

    __slots__ = ("_now", "_buckets", "_urgent", "_times", "_live_n",
                 "_live_u", "_draining", "_events_done", "_dead_skipped",
                 "_active_process", "_metrics", "_obs_scope", "_profile_cb",
                 "timeout")

    def __new__(cls, initial_time: float = 0.0, reference: bool = False):
        if reference and cls is Environment:
            return object.__new__(_ReferenceEnvironment)
        return object.__new__(cls)

    def __init__(self, initial_time: float = 0.0, reference: bool = False):
        self._now = float(initial_time)
        # Calendar queue state. ``_buckets``/``_urgent`` map an exact
        # timestamp to the FIFO list of events due then (split per priority);
        # ``_times`` is a heap over the distinct timestamps (it may briefly
        # hold a duplicate when both priority dicts gain the same key — the
        # advance step dedupes). ``_live_*`` is the batch currently being
        # drained; same-instant arrivals append straight onto it.
        self._buckets: dict[float, list[Event]] = {}
        self._urgent: dict[float, list[Event]] = {}
        self._times: list[float] = []
        self._live_n: deque[Event] = deque()
        self._live_u: deque[Event] = deque()
        self._draining = False
        #: Events dispatched so far; flushed per batch during a drain.
        self._events_done = 0
        self._dead_skipped = 0
        self._active_process: Optional[Process] = None
        #: Lazily-built metrics registry (one per environment); see
        #: :attr:`metrics`.
        self._metrics: Optional[Any] = None
        #: Optional per-event profiling hook; see :meth:`profile`. When set,
        #: :meth:`run` routes through the instrumented drain loop.
        self._profile_cb: Optional[Any] = None
        #: ``env.timeout(delay, value=None)`` — a specialised closure rather
        #: than a method; see :func:`_make_timeout_factory`.
        self.timeout = _make_timeout_factory(self)
        #: Ambient span stack: the implicit causal parent for spans and trace
        #: records created synchronously inside a scope. It lives here — not
        #: on any one TraceLog — because causality is a property of the
        #: execution context: a VEEM tracing to its own log still parents its
        #: deploy span under the rule firing that invoked it. Scopes must
        #: never span a ``yield`` (processes interleave); cross-process
        #: causality is passed explicitly via ``parent=``.
        self._obs_scope: list[Any] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def reference(self) -> bool:
        """True on the heap-based differential-oracle kernel."""
        return False

    @property
    def events_processed(self) -> int:
        """Total events dispatched (including dead skips).

        Exact whenever the kernel is quiescent; during a drain it trails the
        live batch by at most the batch length.
        """
        return self._events_done

    @property
    def dead_skipped(self) -> int:
        """Lazily-cancelled events skipped at dispatch."""
        return self._dead_skipped

    @property
    def metrics(self):
        """The environment's :class:`~repro.obs.metrics.MetricsRegistry`.

        Built on first access so simulations that never touch observability
        pay nothing; imported lazily to keep the kernel dependency-free.
        The kernel's own counters are exposed as views under ``kernel.*``.
        """
        if self._metrics is None:
            from ..obs.metrics import MetricsRegistry
            registry = MetricsRegistry()
            registry.register_view("kernel.events.processed",
                                   lambda: float(self.events_processed))
            registry.register_view("kernel.events.dead_skipped",
                                   lambda: float(self._dead_skipped))
            self._metrics = registry
        return self._metrics

    @property
    def current_span(self):
        """The innermost ambient span, or None outside any scope."""
        scope = self._obs_scope
        return scope[-1] if scope else None

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        # Cascade batcher: a zero-delay event scheduled while its own instant
        # is draining joins the live batch directly — no queue transaction.
        # FIFO appends preserve the heap kernel's (time, priority, seq) order
        # because creation order *is* seq order.
        if not delay and self._draining:
            (self._live_n if priority else self._live_u).append(event)
            return
        t = self._now + delay
        buckets = self._buckets if priority else self._urgent
        bucket = buckets.get(t)
        if bucket is not None:
            bucket.append(event)
        else:
            buckets[t] = [event]
            heappush(self._times, t)

    def _advance(self) -> bool:
        """Adopt the next distinct timestamp's buckets as the live batch.

        Returns False when the queue is exhausted. Shared by :meth:`step`;
        :meth:`run` inlines the same logic in its drain loop. Must only be
        called with the live batch empty.
        """
        times = self._times
        if not times:
            return False
        t = heappop(times)
        while times and times[0] == t:
            heappop(times)
        self._now = t
        bucket = self._buckets.pop(t, None)
        if bucket is not None:
            self._live_n.extend(bucket)
        bucket = self._urgent.pop(t, None) if self._urgent else None
        if bucket is not None:
            self._live_u.extend(bucket)
        return True

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._live_u or self._live_n:
            return self._now
        return self._times[0] if self._times else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if self._draining:
            raise SimError("step() is not reentrant with run()")
        if self._live_u:
            event = self._live_u.popleft()
        elif self._live_n:
            event = self._live_n.popleft()
        else:
            if not self._advance():
                raise SimError("empty event queue")
            if self._live_u:
                event = self._live_u.popleft()
            else:
                event = self._live_n.popleft()
        self._events_done += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
        elif event.dead:
            self._dead_skipped += 1
        elif not event._ok and not event.defused:
            raise event._value

    def profile(self, callback) -> None:
        """Install (or with ``None``, remove) a per-event profiling hook.

        The hook is called after every dispatch as ``callback(event,
        callbacks, wall_s)`` — the event, the callback list it was
        dispatched with (``None`` for a lazily-cancelled dead skip), and
        the wall-clock seconds the dispatch took. Event *order* is
        identical to the unprofiled drain; only wall-clock changes, which
        is invisible to the simulation. Refused on the reference kernel —
        it is the differential oracle and stays verbatim.
        """
        if callback is not None and self.reference:
            raise SimError("profiling is not supported on the reference "
                           "(differential-oracle) kernel")
        self._profile_cb = callback

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a time (run until
        the clock would pass it), or an :class:`Event` (run until it fires and
        return its value).
        """
        if self._profile_cb is not None:
            return self._run_profiled(until)
        if self._draining:
            raise SimError("run() is not reentrant")
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        # The drain loop is the single hottest path in the harness: queue
        # state is bound locally and the common dispatch (one callback, event
        # ok) is branch-minimal. The dispatch tally is written back in the
        # finally so an exception (or an until= return) leaves the counters
        # and queue resumable.
        times = self._times
        buckets = self._buckets
        urgent = self._urgent
        live_n = self._live_n
        live_u = self._live_u
        pop_n = live_n.popleft
        pop_u = live_u.popleft
        done = 0
        dead_skipped = 0
        self._draining = True
        try:
            while True:
                # ``callbacks is None`` is the processed marker with the
                # property descriptor peeled off — this check runs per event
                # whenever a run() awaits an event.
                if stop_event is not None and stop_event.callbacks is None:
                    if not stop_event._ok:
                        raise stop_event._value
                    return stop_event._value
                # Urgent first on every pick: an URGENT event scheduled
                # mid-batch must still beat the remaining NORMAL events of
                # the same instant, exactly as it would in the heap order.
                if live_u:
                    event = pop_u()
                elif live_n:
                    event = pop_n()
                else:
                    # Batch exhausted: adopt the next timestamp's buckets.
                    self._events_done += done
                    done = 0
                    if not times:
                        break
                    t = times[0]
                    if t > stop_time:
                        self._now = stop_time
                        return None
                    heappop(times)
                    while times and times[0] == t:
                        heappop(times)
                    self._now = t
                    bucket = buckets.pop(t, None)
                    if bucket is not None:
                        live_n.extend(bucket)
                    bucket = urgent.pop(t, None) if urgent else None
                    if bucket is not None:
                        live_u.extend(bucket)
                    continue

                done += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event.defused:
                        raise event._value
                elif event.dead:
                    dead_skipped += 1
                elif not event._ok and not event.defused:
                    raise event._value
        finally:
            self._draining = False
            self._events_done += done
            self._dead_skipped += dead_skipped

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            raise SimError("simulation ended before the awaited event fired")
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def _run_profiled(self, until: Optional[float | Event] = None) -> Any:
        """:meth:`run` with the profiling hook: a faithful copy of the
        drain loop (same ``_draining`` cascade batching, same urgent-first
        picks, same batch adoption) that additionally times each dispatch
        with ``perf_counter`` and feeds the hook. Kept separate so the
        unprofiled hot path stays branch-minimal.
        """
        from time import perf_counter
        if self._draining:
            raise SimError("run() is not reentrant")
        hook = self._profile_cb
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        times = self._times
        buckets = self._buckets
        urgent = self._urgent
        live_n = self._live_n
        live_u = self._live_u
        pop_n = live_n.popleft
        pop_u = live_u.popleft
        done = 0
        dead_skipped = 0
        self._draining = True
        try:
            while True:
                if stop_event is not None and stop_event.callbacks is None:
                    if not stop_event._ok:
                        raise stop_event._value
                    return stop_event._value
                if live_u:
                    event = pop_u()
                elif live_n:
                    event = pop_n()
                else:
                    self._events_done += done
                    done = 0
                    if not times:
                        break
                    t = times[0]
                    if t > stop_time:
                        self._now = stop_time
                        return None
                    heappop(times)
                    while times and times[0] == t:
                        heappop(times)
                    self._now = t
                    bucket = buckets.pop(t, None)
                    if bucket is not None:
                        live_n.extend(bucket)
                    bucket = urgent.pop(t, None) if urgent else None
                    if bucket is not None:
                        live_u.extend(bucket)
                    continue

                done += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    t0 = perf_counter()
                    for callback in callbacks:
                        callback(event)
                    hook(event, callbacks, perf_counter() - t0)
                    if not event._ok and not event.defused:
                        raise event._value
                elif event.dead:
                    dead_skipped += 1
                    hook(event, None, 0.0)
                elif not event._ok and not event.defused:
                    raise event._value
                else:
                    hook(event, None, 0.0)
        finally:
            self._draining = False
            self._events_done += done
            self._dead_skipped += dead_skipped

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            raise SimError("simulation ended before the awaited event fired")
        if stop_time != float("inf"):
            self._now = stop_time
        return None


class _ReferenceEnvironment(Environment):
    """The original binary-heap kernel, kept verbatim as an oracle.

    Selected via ``Environment(reference=True)``. Heap entries carry an
    explicit ``(time, priority, seq)`` key; the differential suite asserts
    the calendar queue replays its exact event order.
    """

    __slots__ = ("_queue", "_seq")

    def __init__(self, initial_time: float = 0.0, reference: bool = True):
        super().__init__(initial_time)
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count().__next__

    @property
    def reference(self) -> bool:
        return True

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = Environment.NORMAL) -> None:
        heappush(self._queue,
                 (self._now + delay, priority, self._seq(), event))

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        if not self._queue:
            raise SimError("empty event queue")
        self._now, _, _, event = heappop(self._queue)
        self._events_done += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
        elif event.dead:
            self._dead_skipped += 1
        elif not event._ok and not event.defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        queue = self._queue
        done = 0
        dead_skipped = 0
        try:
            while queue:
                if stop_event is not None and stop_event.processed:
                    if not stop_event._ok:
                        raise stop_event._value
                    return stop_event._value
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                self._now, _, _, event = heappop(queue)
                done += 1
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event.defused:
                        raise event._value
                elif event.dead:
                    dead_skipped += 1
                elif not event._ok and not event.defused:
                    raise event._value
        finally:
            self._events_done += done
            self._dead_skipped += dead_skipped

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            raise SimError("simulation ended before the awaited event fired")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
