"""Shared-resource primitives for the simulation kernel.

Provides counted resources (:class:`Resource`), continuous capacity pools
(:class:`Container`) and FIFO message queues (:class:`Store`). These are the
building blocks used by the cloud substrate — e.g. a VEEH models its CPU and
memory as :class:`Container` pools, and the Condor scheduler's job queue is a
:class:`Store`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .kernel import Environment, Event, SimError

__all__ = ["Request", "Release", "Resource", "Container", "Store", "FilterStore"]


class Request(Event):
    """A pending acquisition of one resource slot.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (or withdraw the request if still queued)."""
        self.resource._do_release(self)


class Release(Event):
    """Explicit release of a previously granted :class:`Request`."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        resource._do_release(request)
        self.succeed()


class Resource:
    """A counted resource with ``capacity`` identical slots and a FIFO queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internal ------------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _do_release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                pass  # releasing twice is a no-op

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class _ContainerGet(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._getters.append(self)
        container._trigger()


class _ContainerPut(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._putters.append(self)
        container._trigger()


class Container:
    """A pool of continuous capacity (e.g. MB of memory, CPU shares).

    ``get`` blocks until the requested amount is available; ``put`` blocks
    until it fits under ``capacity``.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: list[_ContainerGet] = []
        self._putters: list[_ContainerPut] = []

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> _ContainerGet:
        return _ContainerGet(self, amount)

    def put(self, amount: float) -> _ContainerPut:
        return _ContainerPut(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                put = self._putters[0]
                if self._level + put.amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._getters:
                get = self._getters[0]
                if self._level >= get.amount:
                    self._getters.pop(0)
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progressed = True


class _StoreGet(Event):
    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._getters.append(self)
        store._trigger()


class _FilterStoreGet(Event):
    def __init__(self, store: "FilterStore",
                 predicate: Callable[[Any], bool]):
        super().__init__(store.env)
        self.predicate = predicate
        store._getters.append(self)
        store._trigger()


class Store:
    """An unbounded-or-bounded FIFO queue of Python objects."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; fires immediately unless the store is full."""
        event = Event(self.env)
        if len(self.items) >= self.capacity:
            event.fail(SimError("store full"))
            return event
        self.items.append(item)
        event.succeed(item)
        self._trigger()
        return event

    def get(self) -> _StoreGet:
        return _StoreGet(self)

    def _trigger(self) -> None:
        while self._getters and self.items:
            getter = self._getters.pop(0)
            getter.succeed(self.items.pop(0))


class FilterStore(Store):
    """A store whose getters may select items with a predicate."""

    def get(self, predicate: Optional[Callable[[Any], bool]] = None
            ) -> _FilterStoreGet:
        return _FilterStoreGet(self, predicate or (lambda item: True))

    def _trigger(self) -> None:
        # Scan getters in arrival order; each may match a different item.
        remaining: list[Event] = []
        for getter in self._getters:
            matched = None
            for item in self.items:
                if getter.predicate(item):  # type: ignore[attr-defined]
                    matched = item
                    break
            if matched is not None:
                self.items.remove(matched)
                getter.succeed(matched)
            else:
                remaining.append(getter)
        self._getters = remaining
