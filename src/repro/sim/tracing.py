"""Structured trace log for simulation runs.

The RESERVOIR evaluation relies on *infrastructural logs* to validate that
elasticity actions were invoked within their time constraints (§4.2.3: the
generated instruments "verify ... that suitable adjustment operations were
invoked by matching entries and time frames in infrastructural logs"). This
module provides the log those instruments consume, plus the time-series
recorder used to regenerate Fig. 11.

Beyond flat records the log now carries *causal spans*
(:class:`~repro.obs.spans.Span`): attributed intervals with parent links, so
one chain connects a KPI publication through the rule firing it enabled down
to the VEEM deploy it caused. Flat ``emit()`` callers are untouched — records
emitted outside any span scope serialise byte-identically to the seed.

Query-side, ``query``/``first``/``last`` run off per-(source, kind) indices
maintained lazily: ``emit()`` stays a plain append (the write path is the hot
one), and indices catch up to the high-water mark on the first read. Records
are appended in nondecreasing simulation time, so every index list is itself
time-sorted and the time window reduces to two bisects.
"""

from __future__ import annotations

import bisect
import json
from array import array
from operator import attrgetter, mul, sub
from typing import Any, Callable, Iterator, Optional, Union

from ..obs.spans import Span, SpanError, next_span_id
from .kernel import Environment

__all__ = [
    "TraceRecord",
    "TraceLog",
    "TraceSubscription",
    "Span",
    "SpanError",
    "TimeSeries",
    "SeriesRecorder",
]

_REC_TIME = attrgetter("time")

#: Shared empty candidate list for index misses.
_EMPTY: tuple = ()


class TraceRecord:
    """One structured log entry: (time, source, event kind, details).

    ``span_id`` attributes the record to the causal span that was ambient
    when it was emitted; it is ``None`` (and omitted from the JSON form) for
    records emitted outside any span scope, keeping flat logging
    byte-identical to the pre-span format.

    Records are immutable by convention. A handwritten ``__slots__`` class
    rather than a frozen dataclass: one is built per ``emit()``, and the
    frozen ``object.__setattr__`` dance is the single biggest cost on that
    path.
    """

    __slots__ = ("time", "source", "kind", "details", "span_id")

    def __init__(self, time: float, source: str, kind: str,
                 details: Optional[dict[str, Any]] = None,
                 span_id: Optional[int] = None):
        self.time = time
        self.source = source
        self.kind = kind
        self.details = details if details is not None else {}
        self.span_id = span_id

    def __repr__(self) -> str:
        return (f"TraceRecord(time={self.time!r}, source={self.source!r}, "
                f"kind={self.kind!r}, details={self.details!r}, "
                f"span_id={self.span_id!r})")

    def to_json(self) -> str:
        payload: dict[str, Any] = {
            "time": self.time, "source": self.source, "kind": self.kind,
            "details": self.details,
        }
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        return json.dumps(payload, sort_keys=True)


class TraceSubscription:
    """Detachable handle for a trace listener (mirrors the monitoring
    fabric's ``Subscription``). ``cancel()`` is idempotent."""

    __slots__ = ("log", "listener", "active")

    def __init__(self, log: "TraceLog",
                 listener: Callable[[TraceRecord], None]):
        self.log = log
        self.listener = listener
        self.active = True

    def cancel(self) -> None:
        if self.active:
            self.active = False
            self.log.unsubscribe(self.listener)

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"<TraceSubscription {state} {self.listener!r}>"


class _SpanScope:
    """Hand-rolled context manager for :meth:`TraceLog.span_scope` — this
    sits on the deploy/submit paths, where ``@contextmanager``'s generator
    machinery is measurable overhead."""

    __slots__ = ("_log", "_scope", "span", "_status")

    def __init__(self, log: "TraceLog", span: Span, status: str):
        self._log = log
        self._scope = log._scope
        self.span = span
        self._status = status

    def __enter__(self) -> Span:
        self._scope.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._scope.pop()
        if not self.span.closed:
            self._log.close_span(
                self.span, "error" if exc_type is not None else self._status)
        return False


class _Activation:
    """Hand-rolled context manager for :meth:`TraceLog.activate`."""

    __slots__ = ("_scope", "span")

    def __init__(self, scope: list, span: Span):
        self._scope = scope
        self.span = span

    def __enter__(self) -> Span:
        self._scope.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._scope.pop()
        return False


class TraceLog:
    """Append-only structured log with indexed queries and causal spans."""

    def __init__(self, env: Environment):
        self.env = env
        # The ambient scope stack lives on the environment (causality is an
        # environment-wide property); bind the list once for the hot paths.
        self._scope = env._obs_scope
        self.records: list[TraceRecord] = []
        self._listeners: list[Callable[[TraceRecord], None]] = []
        # Keyed listeners: field -> key -> listeners, dispatched with one
        # dict probe per registered field. A hundred sites' managers sharing
        # one log each counting "their" records would otherwise fan every
        # emit out to every manager.
        self._keyed: dict[str, dict[Any, list[Callable[[TraceRecord],
                                                       None]]]] = {}
        #: All spans opened through this log, by id (insertion-ordered).
        self.spans: dict[int, Span] = {}
        # Lazy per-(source, kind) indices over ``records``; ``_idx_pos`` is
        # the number of records already folded in. emit() never touches
        # these — the first query after a burst of writes catches them up.
        self._by_source: dict[str, list[TraceRecord]] = {}
        self._by_kind: dict[str, list[TraceRecord]] = {}
        self._by_pair: dict[tuple[str, str], list[TraceRecord]] = {}
        self._by_span: dict[int, list[TraceRecord]] = {}
        self._idx_pos = 0

    # -- flat records --------------------------------------------------------
    def emit(self, source: str, kind: str, **details: Any) -> TraceRecord:
        scope = self._scope
        record = TraceRecord(self.env.now, source, kind, details,
                             scope[-1].span_id if scope else None)
        self.records.append(record)
        for listener in self._listeners:
            listener(record)
        if self._keyed:
            for field, table in self._keyed.items():
                listeners = table.get(details.get(field))
                if listeners:
                    for listener in listeners:
                        listener(record)
        return record

    def emit_in(self, span: Optional[Span], source: str, kind: str,
                **details: Any) -> TraceRecord:
        """Emit one record attributed to ``span`` directly — the
        single-record equivalent of ``with activate(span): emit(...)``
        without the scope push/pop. ``span=None`` emits a flat record."""
        record = TraceRecord(self.env.now, source, kind, details,
                             span.span_id if span is not None else None)
        self.records.append(record)
        for listener in self._listeners:
            listener(record)
        if self._keyed:
            for field, table in self._keyed.items():
                listeners = table.get(details.get(field))
                if listeners:
                    for listener in listeners:
                        listener(record)
        return record

    def subscribe(self, listener: Callable[[TraceRecord], None]
                  ) -> TraceSubscription:
        self._listeners.append(listener)
        return TraceSubscription(self, listener)

    def subscribe_keyed(self, field: str, key: Any,
                        listener: Callable[[TraceRecord], None]) -> None:
        """Subscribe to records whose ``details[field] == key`` only.

        Unlike :meth:`subscribe`, dispatch cost does not grow with the
        number of keyed listeners: ``emit`` probes one dict per registered
        field and calls only the listeners registered for that record's
        key."""
        self._keyed.setdefault(field, {}).setdefault(key, []).append(listener)

    def unsubscribe_keyed(self, field: str, key: Any,
                          listener: Callable[[TraceRecord], None]) -> None:
        """Detach a keyed listener; detaching one not attached is a no-op."""
        table = self._keyed.get(field)
        if table is None:
            return
        listeners = table.get(key)
        if not listeners:
            return
        try:
            listeners.remove(listener)
        except ValueError:
            return
        if not listeners:
            del table[key]
            if not table:
                del self._keyed[field]

    def unsubscribe(self, handle: Union[TraceSubscription,
                                        Callable[[TraceRecord], None]]
                    ) -> None:
        """Detach a listener by handle or by the original callable.

        Detaching something no longer attached is a no-op — undeploy paths
        race with explicit cancellation and both must be safe.
        """
        listener = (handle.listener if isinstance(handle, TraceSubscription)
                    else handle)
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # -- indexed queries -----------------------------------------------------
    def _refresh_indices(self) -> None:
        records = self.records
        pos = self._idx_pos
        if pos == len(records):
            return
        by_source, by_kind = self._by_source, self._by_kind
        by_pair, by_span = self._by_pair, self._by_span
        for i in range(pos, len(records)):
            r = records[i]
            by_source.setdefault(r.source, []).append(r)
            by_kind.setdefault(r.kind, []).append(r)
            by_pair.setdefault((r.source, r.kind), []).append(r)
            if r.span_id is not None:
                by_span.setdefault(r.span_id, []).append(r)
        self._idx_pos = len(records)

    def _candidates(self, source: Optional[str], kind: Optional[str]
                    ) -> list[TraceRecord]:
        if source is None and kind is None:
            return self.records
        self._refresh_indices()
        if source is not None and kind is not None:
            return self._by_pair.get((source, kind), _EMPTY)
        if source is not None:
            return self._by_source.get(source, _EMPTY)
        return self._by_kind.get(kind, _EMPTY)

    def query(self, *, source: Optional[str] = None,
              kind: Optional[str] = None,
              since: float = float("-inf"),
              until: float = float("inf")) -> list[TraceRecord]:
        """Filter records by source, kind and time window (inclusive).

        Index lookup plus two bisects — no linear scan. Results are in emit
        order, identical to the seed's linear filter.
        """
        candidates = self._candidates(source, kind)
        if since == float("-inf") and until == float("inf"):
            return list(candidates)
        lo = bisect.bisect_left(candidates, since, key=_REC_TIME)
        hi = bisect.bisect_right(candidates, until, key=_REC_TIME)
        return list(candidates[lo:hi])

    def first(self, **kwargs: Any) -> Optional[TraceRecord]:
        matches = self.query(**kwargs)
        return matches[0] if matches else None

    def last(self, **kwargs: Any) -> Optional[TraceRecord]:
        matches = self.query(**kwargs)
        return matches[-1] if matches else None

    # -- causal spans --------------------------------------------------------
    def span(self, source: str, kind: str, *,
             parent: Union[Span, int, None] = None,
             **details: Any) -> Span:
        """Open a span. With no explicit ``parent`` it nests under the
        ambient span (the innermost active scope on the environment), or is
        a root if none is active. Pass ``parent=`` explicitly when causality
        crosses a process boundary."""
        if parent is None:
            scope = self._scope
            parent_id = scope[-1].span_id if scope else None
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = int(parent)
        sp = Span(next_span_id(), parent_id, source, kind, self.env.now,
                  details=details)
        self.spans[sp.span_id] = sp
        return sp

    def close_span(self, span: Span, status: str = "ok",
                   **details: Any) -> Span:
        """Close a span at the current simulated time.

        Rejects double closes, and rejects closing a span that is still an
        *enclosing* ambient scope (close-out-of-order): children must close
        before their active ancestors.
        """
        if span.closed:
            raise SpanError(f"{span!r} already closed")
        scope = self._scope
        if span in scope and scope[-1] is not span:
            raise SpanError(
                f"out-of-order close: {span!r} is an enclosing scope of "
                f"{scope[-1]!r}")
        span.end = self.env.now
        span.status = status
        if details:
            span.details.update(details)
        return span

    def span_scope(self, source: str, kind: str, *,
                   parent: Union[Span, int, None] = None,
                   status: str = "ok", **details: Any) -> _SpanScope:
        """Open a span, make it ambient for the enclosed *synchronous*
        section, and close it on exit (``status="error"`` on exception).

        Never hold a scope across a ``yield``: processes interleave, and the
        ambient stack is shared by the whole environment.
        """
        return _SpanScope(self, self.span(source, kind, parent=parent,
                                          **details), status)

    def activate(self, span: Span) -> _Activation:
        """Make an existing open span ambient for a synchronous section
        without closing it on exit — for long-lived spans (a deployment in
        flight) that attribute work across several synchronous bursts."""
        return _Activation(self._scope, span)

    @property
    def current_span(self) -> Optional[Span]:
        return self.env.current_span

    # -- span queries --------------------------------------------------------
    def get_span(self, span_id: int) -> Optional[Span]:
        return self.spans.get(span_id)

    def find_spans(self, *, source: Optional[str] = None,
                   kind: Optional[str] = None,
                   status: Optional[str] = None) -> list[Span]:
        return [
            s for s in self.spans.values()
            if (source is None or s.source == source)
            and (kind is None or s.kind == kind)
            and (status is None or s.status == status)
        ]

    def open_spans(self) -> list[Span]:
        """Spans never closed — orphans, when the simulation is over."""
        return [s for s in self.spans.values() if not s.closed]

    def children(self, span: Union[Span, int]) -> list[Span]:
        parent_id = span.span_id if isinstance(span, Span) else span
        return [s for s in self.spans.values() if s.parent_id == parent_id]

    def ancestors(self, span: Union[Span, int]) -> list[Span]:
        """Parent chain, nearest first. Stops at a root or at a parent id
        recorded in a different log."""
        sp = self.spans.get(span.span_id if isinstance(span, Span) else span)
        out: list[Span] = []
        while sp is not None and sp.parent_id is not None:
            sp = self.spans.get(sp.parent_id)
            if sp is None:
                break
            out.append(sp)
        return out

    def is_ancestor(self, ancestor: Union[Span, int],
                    descendant: Union[Span, int]) -> bool:
        ancestor_id = (ancestor.span_id if isinstance(ancestor, Span)
                       else ancestor)
        return any(s.span_id == ancestor_id
                   for s in self.ancestors(descendant))

    def span_records(self, span: Union[Span, int]) -> list[TraceRecord]:
        """Flat records attributed to a span (emitted inside its scope)."""
        self._refresh_indices()
        span_id = span.span_id if isinstance(span, Span) else span
        return list(self._by_span.get(span_id, _EMPTY))


class TimeSeries:
    """A step-function time series: value changes recorded at time points.

    Used for the Fig. 11 series (queued jobs, allocated instances) and for the
    resource-usage integrals in Table 3.

    Storage is a pair of ``array('d')`` columns: 8 bytes per point and one
    contiguous buffer per column, versus ~32 bytes per float object (plus
    pointer) for a list — the scale harness keeps millions of points live.
    ``array`` supports ``bisect`` and slicing, so the query paths below are
    windowed instead of scanning full history.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str, initial: float = 0.0, start: float = 0.0):
        self.name = name
        self.times: array = array("d", (start,))
        self.values: array = array("d", (float(initial),))

    def record(self, time: float, value: float) -> None:
        if time < self.times[-1]:
            raise ValueError(
                f"non-monotonic time {time} < {self.times[-1]} in {self.name}"
            )
        if time == self.times[-1]:
            self.values[-1] = value
        else:
            self.times.append(time)
            self.values.append(value)

    def increment(self, time: float, delta: float = 1.0) -> None:
        self.record(time, self.values[-1] + delta)

    @property
    def current(self) -> float:
        return self.values[-1]

    def value_at(self, time: float) -> float:
        """Step-function evaluation (right-continuous).

        Times before the first recorded point return the initial value — a
        series that begins mid-run (e.g. instance counts created on first
        deployment) reads as its initial level before it started.
        """
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return self.values[0]
        return self.values[idx]

    def integral(self, start: float, end: float) -> float:
        """∫ value dt over [start, end] — e.g. node-seconds of allocation.

        Vectorised: the interior segments reduce to one ``sum`` over C-level
        ``map`` pipelines instead of a Python loop per change point. Terms
        are accumulated in the same left-to-right segment order as the
        original loop, so results are bit-identical.
        """
        if end < start:
            raise ValueError("end < start")
        if end == start:
            return 0.0
        times, values = self.times, self.values
        lo = bisect.bisect_right(times, start) - 1
        if lo < 0:
            lo = 0
        hi = bisect.bisect_right(times, end) - 1
        if hi < 0:
            hi = 0
        if hi == lo:
            # One segment covers the whole window.
            return values[lo] * (end - start)
        total = values[lo] * (times[lo + 1] - start)
        if hi > lo + 1:
            # sum(..., total) folds left-to-right from the first term, the
            # same accumulation order as the replaced per-segment loop.
            total = sum(map(mul, values[lo + 1:hi],
                            map(sub, times[lo + 2:hi + 1],
                                times[lo + 1:hi])), total)
        return total + values[hi] * (end - times[hi])

    def mean(self, start: float, end: float) -> float:
        """Time-weighted average over [start, end]."""
        if end <= start:
            raise ValueError("need end > start for a mean")
        return self.integral(start, end) / (end - start)

    def _window_extrema(self, start: float, end: float,
                        fold: Callable) -> float:
        """Shared bisect-windowed core of :meth:`maximum`/:meth:`minimum`.

        Two bisects bound the change points inside ``[start, end]``; the
        value *entering* the window (the step level carried in from before
        ``start``) also counts, via :meth:`value_at` so right-continuity at
        a change point is preserved.
        """
        times, values = self.times, self.values
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, end)
        if lo == 0 and hi == len(values):
            window = values
        else:
            window = values[lo:hi]
        if times[0] < start:
            entering = self.value_at(start)
            if not window:
                return entering
            return fold(fold(window), entering)
        if not window:
            raise ValueError("empty window")
        return fold(window)

    def maximum(self, start: float = float("-inf"),
                end: float = float("inf")) -> float:
        """Largest value attained over [start, end]."""
        return self._window_extrema(start, end, max)

    def minimum(self, start: float = float("-inf"),
                end: float = float("inf")) -> float:
        """Smallest value attained over [start, end]."""
        return self._window_extrema(start, end, min)

    def steps(self) -> list[tuple[float, float]]:
        """The raw (time, value) change points."""
        return list(zip(self.times, self.values))

    def sample(self, start: float, end: float, period: float
               ) -> list[tuple[float, float]]:
        """Regular-grid samples of the step function (for plotting/printing).

        Grid points are computed as ``start + i * period`` rather than by
        accumulating ``t += period``: repeated float addition drifts (after
        1e6 steps of 0.1 the accumulated grid is off by whole samples),
        whereas one multiply per point keeps every grid point exact to one
        rounding.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        out = []
        i = 0
        while True:
            t = start + i * period
            if t > end:
                break
            out.append((t, self.value_at(t)))
            i += 1
        return out


class SeriesRecorder:
    """A bag of named :class:`TimeSeries`, convenient for experiments."""

    def __init__(self, env: Environment):
        self.env = env
        self.series: dict[str, TimeSeries] = {}

    def get(self, name: str, initial: float = 0.0) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name, initial, start=self.env.now)
        return self.series[name]

    def record(self, name: str, value: float) -> None:
        self.get(name).record(self.env.now, value)

    def increment(self, name: str, delta: float = 1.0) -> None:
        self.get(name).increment(self.env.now, delta)

    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series
