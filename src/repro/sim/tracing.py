"""Structured trace log for simulation runs.

The RESERVOIR evaluation relies on *infrastructural logs* to validate that
elasticity actions were invoked within their time constraints (§4.2.3: the
generated instruments "verify ... that suitable adjustment operations were
invoked by matching entries and time frames in infrastructural logs"). This
module provides the log those instruments consume, plus the time-series
recorder used to regenerate Fig. 11.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from .kernel import Environment

__all__ = ["TraceRecord", "TraceLog", "TimeSeries", "SeriesRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One structured log entry: (time, source, event kind, details)."""

    time: float
    source: str
    kind: str
    details: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"time": self.time, "source": self.source, "kind": self.kind,
             "details": self.details},
            sort_keys=True,
        )


class TraceLog:
    """Append-only structured log with simple query support."""

    def __init__(self, env: Environment):
        self.env = env
        self.records: list[TraceRecord] = []
        self._listeners: list[Callable[[TraceRecord], None]] = []

    def emit(self, source: str, kind: str, **details: Any) -> TraceRecord:
        record = TraceRecord(self.env.now, source, kind, details)
        self.records.append(record)
        for listener in self._listeners:
            listener(record)
        return record

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def query(self, *, source: Optional[str] = None,
              kind: Optional[str] = None,
              since: float = float("-inf"),
              until: float = float("inf")) -> list[TraceRecord]:
        """Filter records by source, kind and time window (inclusive)."""
        return [
            r for r in self.records
            if (source is None or r.source == source)
            and (kind is None or r.kind == kind)
            and since <= r.time <= until
        ]

    def first(self, **kwargs: Any) -> Optional[TraceRecord]:
        matches = self.query(**kwargs)
        return matches[0] if matches else None

    def last(self, **kwargs: Any) -> Optional[TraceRecord]:
        matches = self.query(**kwargs)
        return matches[-1] if matches else None


class TimeSeries:
    """A step-function time series: value changes recorded at time points.

    Used for the Fig. 11 series (queued jobs, allocated instances) and for the
    resource-usage integrals in Table 3.
    """

    def __init__(self, name: str, initial: float = 0.0, start: float = 0.0):
        self.name = name
        self.times: list[float] = [start]
        self.values: list[float] = [float(initial)]

    def record(self, time: float, value: float) -> None:
        if time < self.times[-1]:
            raise ValueError(
                f"non-monotonic time {time} < {self.times[-1]} in {self.name}"
            )
        if time == self.times[-1]:
            self.values[-1] = float(value)
        else:
            self.times.append(time)
            self.values.append(float(value))

    def increment(self, time: float, delta: float = 1.0) -> None:
        self.record(time, self.values[-1] + delta)

    @property
    def current(self) -> float:
        return self.values[-1]

    def value_at(self, time: float) -> float:
        """Step-function evaluation (right-continuous).

        Times before the first recorded point return the initial value — a
        series that begins mid-run (e.g. instance counts created on first
        deployment) reads as its initial level before it started.
        """
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return self.values[0]
        return self.values[idx]

    def integral(self, start: float, end: float) -> float:
        """∫ value dt over [start, end] — e.g. node-seconds of allocation."""
        if end < start:
            raise ValueError("end < start")
        if end == start:
            return 0.0
        total = 0.0
        t = start
        idx = bisect.bisect_right(self.times, start) - 1
        idx = max(idx, 0)
        while t < end:
            next_change = (
                self.times[idx + 1] if idx + 1 < len(self.times)
                else float("inf")
            )
            seg_end = min(next_change, end)
            total += self.values[idx] * (seg_end - t)
            t = seg_end
            idx += 1
        return total

    def mean(self, start: float, end: float) -> float:
        """Time-weighted average over [start, end]."""
        if end <= start:
            raise ValueError("need end > start for a mean")
        return self.integral(start, end) / (end - start)

    def maximum(self, start: float = float("-inf"),
                end: float = float("inf")) -> float:
        vals = [v for t, v in zip(self.times, self.values)
                if start <= t <= end]
        # The value entering the window also counts.
        if self.times and self.times[0] < start:
            vals.append(self.value_at(start))
        if not vals:
            raise ValueError("empty window")
        return max(vals)

    def steps(self) -> list[tuple[float, float]]:
        """The raw (time, value) change points."""
        return list(zip(self.times, self.values))

    def sample(self, start: float, end: float, period: float
               ) -> list[tuple[float, float]]:
        """Regular-grid samples of the step function (for plotting/printing)."""
        if period <= 0:
            raise ValueError("period must be positive")
        out = []
        t = start
        while t <= end:
            out.append((t, self.value_at(t)))
            t += period
        return out


class SeriesRecorder:
    """A bag of named :class:`TimeSeries`, convenient for experiments."""

    def __init__(self, env: Environment):
        self.env = env
        self.series: dict[str, TimeSeries] = {}

    def get(self, name: str, initial: float = 0.0) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name, initial, start=self.env.now)
        return self.series[name]

    def record(self, name: str, value: float) -> None:
        self.get(name).record(self.env.now, value)

    def increment(self, name: str, delta: float = 1.0) -> None:
        self.get(name).increment(self.env.now, delta)

    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series
