"""Discrete-event simulation substrate.

The kernel on which the whole reproduction runs: event loop and processes
(:mod:`~repro.sim.kernel`), shared resources (:mod:`~repro.sim.resources`),
structured tracing and time-series recording (:mod:`~repro.sim.tracing`),
seeded random streams (:mod:`~repro.sim.rng`), and process-sharded execution
with epoch barriers (:mod:`~repro.sim.shard`).
"""

from .kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimError,
    StopProcess,
    Timeout,
)
from .resources import Container, FilterStore, Resource, Store
from .rng import RandomStreams, lognormal_from_mean_cv, truncated_normal
from .shard import (
    EpochCommand,
    EpochReport,
    ShardError,
    ShardPool,
    partition_round_robin,
    read_peak_rss_kb,
)
from .tracing import (
    SeriesRecorder,
    Span,
    SpanError,
    TimeSeries,
    TraceLog,
    TraceRecord,
    TraceSubscription,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimError",
    "StopProcess",
    "Timeout",
    "Container",
    "FilterStore",
    "Resource",
    "Store",
    "RandomStreams",
    "lognormal_from_mean_cv",
    "truncated_normal",
    "EpochCommand",
    "EpochReport",
    "ShardError",
    "ShardPool",
    "partition_round_robin",
    "read_peak_rss_kb",
    "SeriesRecorder",
    "Span",
    "SpanError",
    "TimeSeries",
    "TraceLog",
    "TraceRecord",
    "TraceSubscription",
]
