"""repro — reproduction of "Software architecture definition for on-demand
cloud provisioning" (Chapman, Emmerich, Galán Márquez, Clayman, Galis;
HPDC 2010 / Cluster Computing 15:79–100, 2012).

Package map
-----------
``repro.core``
    The paper's contribution: the OVF-based service manifest language
    (abstract syntax, well-formedness rules, XML concrete syntax), its
    behavioural semantics as OCL-style constraints, the generated validation
    instruments, and the Service Manager (parser, lifecycle manager, rule
    engine, accounting).
``repro.cloud``
    The simulated RESERVOIR infrastructure layers: VEEH hosts, VEEM,
    placement policies/constraints, images, virtual networks, federation.
``repro.control``
    The multi-tenant provisioning control plane: named tenants with quotas,
    fair admission queueing, backpressure, federated site selection.
``repro.monitoring``
    The monitoring framework: probes and data dictionaries, XDR wire codec,
    multicast / pub-sub distribution, DHT-backed information model, agents.
``repro.grid``
    The evaluation application substrate: Condor-like scheduler and
    execution services, BPEL-style workflow engine, polymorph-search
    workload.
``repro.apps``
    The SAP motivating-example application model.
``repro.experiments``
    The §6 evaluation harness: Table 3, Fig. 11 and the weekly estimate.
``repro.sim``
    The discrete-event simulation kernel everything runs on.

Quickstart
----------
>>> from repro.sim import Environment
>>> from repro.cloud import Host, ImageRepository, VEEM
>>> from repro.core.manifest import ManifestBuilder
>>> from repro.core.service_manager import ServiceManager
>>> env = Environment()
>>> veem = VEEM(env, repository=ImageRepository())
>>> _ = veem.add_host(Host(env, "h0"))
>>> sm = ServiceManager(env, veem)
>>> manifest = (ManifestBuilder("hello")
...             .component("web", image_mb=512).build())
>>> service = sm.deploy(manifest)
>>> env.run(until=service.deployment)
>>> service.instance_count("web")
1
"""

__version__ = "1.0.0"

from . import apps, cloud, control, core, experiments, grid, monitoring, sim

__all__ = ["apps", "cloud", "control", "core", "experiments", "grid",
           "monitoring", "sim", "__version__"]
