"""A consistent-hashing distributed hash table.

§5.2.7: "For the implementation of the Information Model we have used a
Distributed Hash Table (DHT) for the distributed information model. This
allows the receivers of Measurement data to lookup the fields received to
determine their names, types, and units. The information model nodes use the
DHT to interact among one another."

This is a single-process simulation of a Chord-style ring: nodes own arcs of
a hash ring (with virtual nodes for balance), keys are routed to their
successor node, and node joins/leaves hand the affected keys over — enough
fidelity to measure key distribution and lookup routing, which is what the
monitoring design relies on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Iterator

__all__ = ["DHTError", "DHTNode", "DHTRing"]

#: ring size: 64-bit hash space
_RING_BITS = 64
_RING_SIZE = 2 ** _RING_BITS


def _hash(key: str) -> int:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class DHTError(Exception):
    """Ring misconfiguration or unknown node."""


class DHTNode:
    """One storage node: local key/value store plus statistics."""

    def __init__(self, node_id: str):
        if not node_id:
            raise DHTError("node_id must be non-empty")
        self.node_id = node_id
        self.store: dict[str, Any] = {}
        self.gets = 0
        self.puts = 0

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return f"<DHTNode {self.node_id} keys={len(self.store)}>"


class DHTRing:
    """Consistent-hashing ring with virtual nodes and key handover.

    ``vnodes`` virtual positions per physical node even out arc lengths —
    with a handful of physical nodes and no virtual nodes, one node can own
    most of the ring.
    """

    def __init__(self, vnodes: int = 32):
        if vnodes <= 0:
            raise DHTError("vnodes must be positive")
        self.vnodes = vnodes
        self._nodes: dict[str, DHTNode] = {}
        #: sorted list of (position, node_id)
        self._ring: list[tuple[int, str]] = []

    # -- membership -----------------------------------------------------------
    def _positions(self, node_id: str) -> list[int]:
        return [_hash(f"{node_id}#{i}") for i in range(self.vnodes)]

    def join(self, node_id: str) -> DHTNode:
        """Add a node; keys it now owns are handed over from their old
        owners."""
        if node_id in self._nodes:
            raise DHTError(f"node {node_id!r} already in ring")
        node = DHTNode(node_id)
        self._nodes[node_id] = node
        for pos in self._positions(node_id):
            bisect.insort(self._ring, (pos, node_id))
        # Hand over keys that now route to the new node.
        for other in self._nodes.values():
            if other is node:
                continue
            moved = [k for k in other.store if self.owner_of(k) is node]
            for k in moved:
                node.store[k] = other.store.pop(k)
        return node

    def leave(self, node_id: str) -> None:
        """Remove a node; its keys are re-homed to their new owners."""
        node = self._nodes.get(node_id)
        if node is None:
            raise DHTError(f"node {node_id!r} not in ring")
        del self._nodes[node_id]
        self._ring = [(p, n) for p, n in self._ring if n != node_id]
        if not self._ring and node.store:
            raise DHTError("cannot remove the last node while it holds keys")
        for key, value in node.store.items():
            self.owner_of(key).store[key] = value
        node.store.clear()

    @property
    def nodes(self) -> list[DHTNode]:
        return list(self._nodes.values())

    def node(self, node_id: str) -> DHTNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise DHTError(f"node {node_id!r} not in ring") from None

    # -- routing ---------------------------------------------------------------
    def owner_of(self, key: str) -> DHTNode:
        """The successor node of the key's ring position."""
        if not self._ring:
            raise DHTError("empty ring")
        pos = _hash(key)
        idx = bisect.bisect_right(self._ring, (pos, "￿"))
        if idx == len(self._ring):
            idx = 0  # wrap around
        return self._nodes[self._ring[idx][1]]

    # -- key/value API -----------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        node = self.owner_of(key)
        node.store[key] = value
        node.puts += 1

    def get(self, key: str, default: Any = None) -> Any:
        node = self.owner_of(key)
        node.gets += 1
        return node.store.get(key, default)

    def delete(self, key: str) -> bool:
        node = self.owner_of(key)
        return node.store.pop(key, None) is not None

    def __contains__(self, key: str) -> bool:
        return key in self.owner_of(key).store

    def keys(self) -> Iterator[str]:
        for node in self._nodes.values():
            yield from node.store.keys()

    def keys_with_prefix(self, prefix: str) -> list[str]:
        """Scatter/gather scan — used for taxonomy queries like
        ``/schema/<probe-id>/``."""
        return sorted(k for k in self.keys() if k.startswith(prefix))

    def __len__(self) -> int:
        return sum(len(n.store) for n in self._nodes.values())

    # -- diagnostics -------------------------------------------------------------
    def load_distribution(self) -> dict[str, int]:
        return {n.node_id: len(n.store) for n in self._nodes.values()}

    def imbalance(self) -> float:
        """max/mean keys per node; 1.0 is perfectly balanced."""
        counts = [len(n.store) for n in self._nodes.values()]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean
