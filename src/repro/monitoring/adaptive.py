"""Adaptive monitoring-rate control.

One of the six §5.2 requirements: "**Adaptability**: so that the monitoring
framework can adapt to varying computational and network loads in order to
not be invasive." With hundreds of probes, "it would not be effective to
have all of these probes sending data all of the time, so a mechanism is
needed that controls and manages the relevant probes."

:class:`AdaptiveRateController` watches the distribution framework's
published-byte counter and, when the measurement traffic exceeds a budget,
stretches probe periods (least-important probes first); when traffic falls
back below a restore threshold, declared rates are restored. The probe
data-rate changes flow through :meth:`DataSource.set_data_rate`, so the
information model's Table 2 entries stay current.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment, Interrupt, TraceLog
from .distribution import DistributionFramework
from .probes import DataSource

__all__ = ["ProbePriority", "AdaptiveRateController"]

#: importance classes, throttled lowest first
ProbePriority = int
LOW, NORMAL, HIGH = 0, 1, 2


@dataclass
class _ManagedProbe:
    datasource: DataSource
    name: str
    declared_rate_s: float
    priority: ProbePriority
    throttled: bool = False


class AdaptiveRateController:
    """Keeps aggregate monitoring traffic under a byte-rate budget.

    Parameters
    ----------
    budget_bytes_per_s:
        Target ceiling for published measurement traffic, averaged over the
        controller's check period.
    throttle_factor:
        Multiplier applied to a throttled probe's period (e.g. 4.0 → a 30 s
        probe publishes every 120 s while throttled).
    restore_fraction:
        Traffic must fall below ``restore_fraction × budget`` before
        throttled probes are restored (hysteresis against flapping).
    """

    def __init__(self, env: Environment, network: DistributionFramework, *,
                 budget_bytes_per_s: float = 100.0,
                 check_period_s: float = 60.0,
                 throttle_factor: float = 4.0,
                 restore_fraction: float = 0.5,
                 trace: Optional[TraceLog] = None):
        if budget_bytes_per_s <= 0:
            raise ValueError("budget must be positive")
        if check_period_s <= 0:
            raise ValueError("check period must be positive")
        if throttle_factor <= 1:
            raise ValueError("throttle factor must exceed 1")
        if not 0 < restore_fraction < 1:
            raise ValueError("restore fraction must be in (0, 1)")
        self.env = env
        self.network = network
        self.budget_bytes_per_s = budget_bytes_per_s
        self.check_period_s = check_period_s
        self.throttle_factor = throttle_factor
        self.restore_fraction = restore_fraction
        self.trace = trace if trace is not None else TraceLog(env)
        self._managed: list[_ManagedProbe] = []
        self._last_bytes = network.bytes_published
        self._loop = None
        self.throttle_events = 0
        self.restore_events = 0

    # ------------------------------------------------------------------
    def manage(self, datasource: DataSource, probe_name: str, *,
               priority: ProbePriority = NORMAL) -> None:
        """Put one probe under the controller's authority."""
        probe = datasource.probes[probe_name]  # KeyError for unknown names
        self._managed.append(_ManagedProbe(
            datasource=datasource, name=probe_name,
            declared_rate_s=probe.data_rate_s, priority=priority,
        ))

    def manage_all(self, datasource: DataSource, *,
                   priority: ProbePriority = NORMAL) -> None:
        for name in datasource.probes:
            self.manage(datasource, name, priority=priority)

    @property
    def throttled_probes(self) -> list[str]:
        return [m.name for m in self._managed if m.throttled]

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._loop is None or not self._loop.is_alive:
            self._loop = self.env.process(self._control_loop(),
                                          name="adaptive-monitoring")

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt("controller stopped")
        self._loop = None

    def _control_loop(self):
        try:
            while True:
                yield self.env.timeout(self.check_period_s)
                self._adjust(self.current_rate())
        except Interrupt:
            pass

    def current_rate(self) -> float:
        """Published bytes/s since the last check (and reset the window)."""
        published = self.network.bytes_published
        rate = (published - self._last_bytes) / self.check_period_s
        self._last_bytes = published
        return rate

    def _adjust(self, rate: float) -> None:
        if rate > self.budget_bytes_per_s:
            self._throttle_one(rate)
        elif rate < self.restore_fraction * self.budget_bytes_per_s:
            self._restore_one(rate)

    def _throttle_one(self, rate: float) -> None:
        # Lowest priority first; among equals, the chattiest probe.
        candidates = [m for m in self._managed if not m.throttled]
        if not candidates:
            return
        victim = min(candidates,
                     key=lambda m: (m.priority, m.declared_rate_s))
        victim.throttled = True
        victim.datasource.set_data_rate(
            victim.name, victim.declared_rate_s * self.throttle_factor)
        self.throttle_events += 1
        self.trace.emit("adaptive-monitoring", "probe.throttled",
                        probe=victim.name, rate_bytes_s=rate,
                        new_period_s=victim.declared_rate_s
                        * self.throttle_factor)

    def _restore_one(self, rate: float) -> None:
        # Highest priority back first; reverse of throttling order.
        candidates = [m for m in self._managed if m.throttled]
        if not candidates:
            return
        chosen = max(candidates,
                     key=lambda m: (m.priority, -m.declared_rate_s))
        chosen.throttled = False
        chosen.datasource.set_data_rate(chosen.name, chosen.declared_rate_s)
        self.restore_events += 1
        self.trace.emit("adaptive-monitoring", "probe.restored",
                        probe=chosen.name, rate_bytes_s=rate,
                        period_s=chosen.declared_rate_s)
