"""The measurement distribution framework.

§5.2.5: "We need a mechanism that allows for multiple submitters and multiple
receivers of data without having vast numbers of network connections ...
Solutions to this include IP multicast, Event Service Bus, or
publish/subscribe mechanism. In each of these, a producer of data only needs
to send one copy of a measurement onto the network, and each of the consumers
will be able to collect the same packet of data concurrently."

§5.2.1: "The collection of the data and the distribution of data are dealt
with by different elements of the monitoring system so that it is possible to
change the distribution framework without changing all the producers and
consumers" — hence the abstract :class:`DistributionFramework` with two
interchangeable implementations:

* :class:`MulticastChannel` — every subscriber sees every packet (IP
  multicast style); filtering happens at the consumer.
* :class:`PubSubBroker` — topic-based routing on (service id, qualified
  name); the network only delivers packets a consumer asked for.

Both carry *encoded* packets (bytes) to keep producers honest about the wire
format, and both account delivered volume so experiments can compare network
utilisation.

Data-plane fast path
--------------------
The fabric is the firehose feeding every elasticity decision, so the hot
path is engineered:

* **Lazy decode** — delivery first peeks only the routing fields of a packet
  (:func:`repro.monitoring.codec.peek_header`); a full
  :class:`~repro.monitoring.measurements.Measurement` is materialised at
  most once per packet, shared by all matched consumers, and never for
  packets nobody wants (``packets_decoded`` counts the full decodes).
* **Indexed routing** — :class:`PubSubBroker` keys exact subscriptions in a
  dict on the canonical :func:`topic_for` string, compiles glob
  subscriptions once (``fnmatch.translate`` → ``re.compile``), and fronts
  both with a route cache keyed on the decoded header. The cache is
  invalidated whenever the subscription set changes. The seed's linear scan
  survives as ``PubSubBroker(env, reference=True)`` — the differential-test
  oracle.
* **Coalesced delayed delivery** — packets published into a latency edge are
  queued per due-time and drained by one long-lived process, so N packets
  sharing an edge cost one kernel event (``delivery_events``), not N.

Subscriptions are first-class: :meth:`DistributionFramework.subscribe`
returns a :class:`Subscription` handle that
:meth:`DistributionFramework.unsubscribe` (or ``handle.cancel()``) removes —
consumers torn down on probe ``off`` or service undeploy no longer leak
routing state.
"""

from __future__ import annotations

import abc
import fnmatch
import itertools
import re
from collections import deque
from typing import Callable, Optional, Sequence

from ..sim import Environment
from .codec import decode_measurement, encode_measurement, peek_header
from .measurements import Measurement

__all__ = [
    "DistributionFramework",
    "MulticastChannel",
    "PubSubBroker",
    "Subscription",
    "topic_for",
]

#: A consumer callback receives the decoded measurement.
ConsumerCallback = Callable[[Measurement], None]

#: characters that make a qualified-name filter a glob pattern
_GLOB_RE = re.compile(r"[*?\[]")

#: distinguishes multiple fabrics in one environment's metrics registry
_fabric_ids = itertools.count(1)


def topic_for(service_id: str, qualified_name: str) -> str:
    """Canonical topic string for pub/sub routing.

    This is the key of :class:`PubSubBroker`'s exact-match index: a
    subscription that pins both the service id and a non-glob qualified name
    is stored (and looked up per packet) under this string.
    """
    return f"{service_id}/{qualified_name}"


class Subscription:
    """One registered consumer: filters + callback + compiled matcher.

    Returned by :meth:`DistributionFramework.subscribe`; hand it back to
    :meth:`DistributionFramework.unsubscribe` (or call :meth:`cancel`) to
    tear the consumer down. A glob ``qualified_name`` is compiled to a regex
    once, here, rather than re-parsed per packet.
    """

    __slots__ = ("framework", "callback", "service_id", "qualified_name",
                 "seq", "active", "_match")

    def __init__(self, framework: "DistributionFramework",
                 callback: ConsumerCallback,
                 service_id: Optional[str],
                 qualified_name: Optional[str],
                 seq: int):
        self.framework = framework
        self.callback = callback
        self.service_id = service_id
        self.qualified_name = qualified_name
        #: registration order; routing preserves it so indexed and reference
        #: modes invoke callbacks in the same sequence
        self.seq = seq
        self.active = True
        if qualified_name is not None and _GLOB_RE.search(qualified_name):
            self._match = re.compile(fnmatch.translate(qualified_name)).match
        else:
            self._match = None

    @property
    def is_glob(self) -> bool:
        return self._match is not None

    def matches(self, service_id: str, qualified_name: str) -> bool:
        """Whether a packet with this routing header passes the filters."""
        if self.service_id is not None and service_id != self.service_id:
            return False
        if self._match is not None:
            return self._match(qualified_name) is not None
        return (self.qualified_name is None
                or qualified_name == self.qualified_name)

    def cancel(self) -> None:
        """Unsubscribe from the owning framework (idempotent)."""
        if self.active:
            self.framework.unsubscribe(self)

    def __repr__(self) -> str:
        return (f"<Subscription service_id={self.service_id!r} "
                f"qualified_name={self.qualified_name!r} "
                f"{'active' if self.active else 'cancelled'}>")


class DistributionFramework(abc.ABC):
    """Producer/consumer fabric for measurement packets."""

    def __init__(self, env: Environment, *, latency_s: float = 0.0):
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.latency_s = latency_s
        #: delivered volume accounting (bytes that reached consumers)
        self.bytes_delivered = 0
        #: injected volume accounting (bytes sent by producers)
        self.bytes_published = 0
        self.packets_published = 0
        #: full Measurement decodes performed (lazy-decode observability:
        #: unmatched packets never increment this)
        self.packets_decoded = 0
        #: kernel wakeups spent draining delayed deliveries; with batching,
        #: N same-instant packets share one
        self.delivery_events = 0
        self._subs: list[Subscription] = []
        self._sub_seq = itertools.count().__next__
        #: FIFO of (due time, [packets]) batches awaiting the latency edge
        self._pending: deque[tuple[float, list[bytes]]] = deque()
        self._drain = None
        # The counters above stay plain ints (the delivery loop is the
        # hottest path in the system); the unified registry sees them
        # through zero-cost views instead.
        self._fabric_label = f"fabric{next(_fabric_ids)}"
        metrics = env.metrics
        for attr in ("bytes_published", "bytes_delivered",
                     "packets_published", "packets_decoded",
                     "delivery_events"):
            metrics.register_view(
                f"monitoring.fabric.{attr}",
                (lambda _a=attr: getattr(self, _a)),
                fabric=self._fabric_label)

    # -- publishing ----------------------------------------------------------
    def publish(self, measurement: Measurement, *,
                packet: Optional[bytes] = None) -> None:
        """Encode and send one measurement into the fabric.

        Producers holding a :class:`~repro.monitoring.codec.PacketEncoder`
        may pass the pre-encoded ``packet`` (byte-identical to
        :func:`~repro.monitoring.codec.encode_measurement` output) to skip
        the redundant encode.
        """
        if packet is None:
            packet = encode_measurement(measurement)
        self.bytes_published += len(packet)
        self.packets_published += 1
        if self.latency_s == 0.0:
            self._deliver(packet)
        else:
            self._enqueue(packet)

    def publish_many(self, measurements: Sequence[Measurement], *,
                     packets: Optional[Sequence[bytes]] = None) -> None:
        """Publish a batch; packets sharing the latency edge coalesce into
        one kernel event instead of one process per packet."""
        if packets is None:
            for m in measurements:
                self.publish(m)
        else:
            if len(packets) != len(measurements):
                raise ValueError("packets must align with measurements")
            for m, p in zip(measurements, packets):
                self.publish(m, packet=p)

    def _enqueue(self, packet: bytes) -> None:
        due = self.env.now + self.latency_s
        pending = self._pending
        # latency_s is fixed, so due times arrive non-decreasing: same-instant
        # publishes land in the tail batch and share its wakeup.
        if pending and pending[-1][0] == due:
            pending[-1][1].append(packet)
        else:
            pending.append((due, [packet]))
        if self._drain is None or not self._drain.is_alive:
            self._drain = self.env.process(self._drain_loop(),
                                           name="mon-delivery")

    def _drain_loop(self):
        pending = self._pending
        while pending:
            due = pending[0][0]
            if due > self.env.now:
                self.delivery_events += 1
                yield self.env.timeout(due - self.env.now)
            for packet in pending.popleft()[1]:
                self._deliver(packet)

    # -- subscribing ---------------------------------------------------------
    def subscribe(self, callback: ConsumerCallback, *,
                  service_id: Optional[str] = None,
                  qualified_name: Optional[str] = None) -> Subscription:
        """Register a consumer and return its handle.

        ``None`` filters mean "everything"; the qualified name may be a glob
        pattern (``uk.ucl.condor.*``).
        """
        sub = Subscription(self, callback, service_id, qualified_name,
                           self._sub_seq())
        self._subs.append(sub)
        self._on_subscribed(sub)
        return sub

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a consumer; idempotent for already-cancelled handles."""
        if subscription.framework is not self:
            raise ValueError("subscription belongs to a different framework")
        if not subscription.active:
            return
        subscription.active = False
        self._subs.remove(subscription)
        self._on_unsubscribed(subscription)

    @property
    def subscription_count(self) -> int:
        return len(self._subs)

    def _on_subscribed(self, subscription: Subscription) -> None:
        """Hook for implementations to maintain routing state."""

    def _on_unsubscribed(self, subscription: Subscription) -> None:
        """Hook for implementations to maintain routing state."""

    @abc.abstractmethod
    def _deliver(self, packet: bytes) -> None:
        """Route an encoded packet to the appropriate consumers."""


class MulticastChannel(DistributionFramework):
    """IP-multicast-style delivery: one packet, every subscriber sees it.

    Subscription filters are applied *at the consumer* after decode, as a
    host's kernel would after joining the multicast group — the whole packet
    still traverses the network to every member, which the byte accounting
    reflects. The decode itself is lazy: the header peek answers the filter
    question, and the packet body is only materialised (once) if at least
    one member's filter matches.
    """

    def _deliver(self, packet: bytes) -> None:
        header = peek_header(packet)
        service_id = header.service_id
        qualified_name = header.qualified_name
        size = len(packet)
        measurement = None
        for sub in self._subs:
            self.bytes_delivered += size  # every member receives it
            if sub.matches(service_id, qualified_name):
                if measurement is None:
                    measurement = decode_measurement(packet, header=header)
                    self.packets_decoded += 1
                sub.callback(measurement)


class PubSubBroker(DistributionFramework):
    """Topic-routed delivery: only matching subscribers receive the packet.

    The default routing mode is indexed: exact subscriptions live in dicts
    keyed on :func:`topic_for` / qualified name / service id, globs are
    compiled once, and a per-header route cache makes the steady state a
    single dict lookup. ``reference=True`` keeps the seed's O(subscriptions)
    linear scan with per-packet ``fnmatch`` — functionally identical (the
    differential tests assert it) and used as the benchmark baseline.
    """

    def __init__(self, env: Environment, *, latency_s: float = 0.0,
                 reference: bool = False):
        super().__init__(env, latency_s=latency_s)
        self.reference = reference
        #: subscriptions pinning service id + exact qualified name,
        #: keyed on the canonical topic string
        self._exact: dict[str, list[Subscription]] = {}
        #: exact qualified name, any service
        self._by_qname: dict[str, list[Subscription]] = {}
        #: service id only, any qualified name
        self._by_service: dict[str, list[Subscription]] = {}
        #: glob qualified names (optionally service-pinned), compiled
        self._globs: list[Subscription] = []
        #: no filters at all
        self._catch_all: list[Subscription] = []
        #: (service id, qualified name) -> matched subscriptions, in
        #: registration order; cleared on any subscribe/unsubscribe
        self._route_cache: dict[tuple[str, str], tuple[Subscription, ...]] = {}
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        metrics = env.metrics
        metrics.register_view(
            "monitoring.broker.route_cache_hits",
            lambda: self.route_cache_hits, fabric=self._fabric_label)
        metrics.register_view(
            "monitoring.broker.route_cache_misses",
            lambda: self.route_cache_misses, fabric=self._fabric_label)

    # -- index maintenance ---------------------------------------------------
    def _bucket(self, sub: Subscription) -> list[Subscription]:
        if sub.is_glob:
            return self._globs
        if sub.qualified_name is None:
            if sub.service_id is None:
                return self._catch_all
            return self._by_service.setdefault(sub.service_id, [])
        if sub.service_id is None:
            return self._by_qname.setdefault(sub.qualified_name, [])
        return self._exact.setdefault(
            topic_for(sub.service_id, sub.qualified_name), [])

    def _on_subscribed(self, sub: Subscription) -> None:
        if not self.reference:
            self._bucket(sub).append(sub)
        self._route_cache.clear()

    def _on_unsubscribed(self, sub: Subscription) -> None:
        if not self.reference:
            self._bucket(sub).remove(sub)
        self._route_cache.clear()

    # -- routing -------------------------------------------------------------
    def _route(self, service_id: str,
               qualified_name: str) -> tuple[Subscription, ...]:
        key = (service_id, qualified_name)
        route = self._route_cache.get(key)
        if route is not None:
            self.route_cache_hits += 1
            return route
        self.route_cache_misses += 1
        matched = list(self._exact.get(topic_for(service_id, qualified_name),
                                       ()))
        matched += self._by_qname.get(qualified_name, ())
        matched += self._by_service.get(service_id, ())
        matched += self._catch_all
        for sub in self._globs:
            if sub.matches(service_id, qualified_name):
                matched.append(sub)
        # callbacks must fire in registration order, exactly as the
        # reference linear scan would invoke them
        matched.sort(key=lambda s: s.seq)
        route = tuple(matched)
        self._route_cache[key] = route
        return route

    def _deliver(self, packet: bytes) -> None:
        if self.reference:
            self._deliver_reference(packet)
            return
        header = peek_header(packet)
        route = self._route(header.service_id, header.qualified_name)
        if not route:
            return  # nobody asked: the packet is never fully decoded
        measurement = decode_measurement(packet, header=header)
        self.packets_decoded += 1
        size = len(packet)
        for sub in route:
            self.bytes_delivered += size  # only matched deliveries
            sub.callback(measurement)

    def _deliver_reference(self, packet: bytes) -> None:
        # The seed's routing path, preserved as the differential oracle:
        # unconditional full decode, then a linear scan with per-packet
        # fnmatch on every glob.
        measurement = decode_measurement(packet)
        self.packets_decoded += 1
        size = len(packet)
        for sub in self._subs:
            if (sub.service_id is not None
                    and measurement.service_id != sub.service_id):
                continue
            if (sub.qualified_name is not None and not fnmatch.fnmatchcase(
                    measurement.qualified_name, sub.qualified_name)):
                continue
            self.bytes_delivered += size
            sub.callback(measurement)
