"""The measurement distribution framework.

§5.2.5: "We need a mechanism that allows for multiple submitters and multiple
receivers of data without having vast numbers of network connections ...
Solutions to this include IP multicast, Event Service Bus, or
publish/subscribe mechanism. In each of these, a producer of data only needs
to send one copy of a measurement onto the network, and each of the consumers
will be able to collect the same packet of data concurrently."

§5.2.1: "The collection of the data and the distribution of data are dealt
with by different elements of the monitoring system so that it is possible to
change the distribution framework without changing all the producers and
consumers" — hence the abstract :class:`DistributionFramework` with two
interchangeable implementations:

* :class:`MulticastChannel` — every subscriber sees every packet (IP
  multicast style); filtering happens at the consumer.
* :class:`PubSubBroker` — topic-based routing on (service id, qualified
  name); the network only delivers packets a consumer asked for.

Both carry *encoded* packets (bytes) to keep producers honest about the wire
format, and both account delivered volume so experiments can compare network
utilisation.
"""

from __future__ import annotations

import abc
import fnmatch
from typing import Callable, Optional

from ..sim import Environment
from .codec import decode_measurement, encode_measurement
from .measurements import Measurement

__all__ = [
    "DistributionFramework",
    "MulticastChannel",
    "PubSubBroker",
    "topic_for",
]

#: A consumer callback receives the decoded measurement.
ConsumerCallback = Callable[[Measurement], None]


def topic_for(service_id: str, qualified_name: str) -> str:
    """Canonical topic string for pub/sub routing."""
    return f"{service_id}/{qualified_name}"


class DistributionFramework(abc.ABC):
    """Producer/consumer fabric for measurement packets."""

    def __init__(self, env: Environment, *, latency_s: float = 0.0):
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.latency_s = latency_s
        #: delivered volume accounting (bytes that reached consumers)
        self.bytes_delivered = 0
        #: injected volume accounting (bytes sent by producers)
        self.bytes_published = 0
        self.packets_published = 0

    def publish(self, measurement: Measurement) -> None:
        """Encode and send one measurement into the fabric."""
        packet = encode_measurement(measurement)
        self.bytes_published += len(packet)
        self.packets_published += 1
        if self.latency_s == 0:
            self._deliver(packet)
        else:
            self.env.process(self._delayed(packet), name="mon-delivery")

    def _delayed(self, packet: bytes):
        yield self.env.timeout(self.latency_s)
        self._deliver(packet)

    @abc.abstractmethod
    def _deliver(self, packet: bytes) -> None:
        """Route an encoded packet to the appropriate consumers."""

    @abc.abstractmethod
    def subscribe(self, callback: ConsumerCallback, *,
                  service_id: Optional[str] = None,
                  qualified_name: Optional[str] = None) -> None:
        """Register a consumer. ``None`` filters mean "everything"; the
        qualified name may be a glob pattern (``uk.ucl.condor.*``)."""


class MulticastChannel(DistributionFramework):
    """IP-multicast-style delivery: one packet, every subscriber sees it.

    Subscription filters are applied *at the consumer* after decode, as a
    host's kernel would after joining the multicast group — the whole packet
    still traverses the network to every member, which the byte accounting
    reflects.
    """

    def __init__(self, env: Environment, *, latency_s: float = 0.0):
        super().__init__(env, latency_s=latency_s)
        self._members: list[tuple[Optional[str], Optional[str],
                                  ConsumerCallback]] = []

    def subscribe(self, callback: ConsumerCallback, *,
                  service_id: Optional[str] = None,
                  qualified_name: Optional[str] = None) -> None:
        self._members.append((service_id, qualified_name, callback))

    def _deliver(self, packet: bytes) -> None:
        measurement = decode_measurement(packet)
        for service_id, pattern, callback in self._members:
            self.bytes_delivered += len(packet)  # every member receives it
            if service_id is not None and measurement.service_id != service_id:
                continue
            if pattern is not None and not fnmatch.fnmatchcase(
                    measurement.qualified_name, pattern):
                continue
            callback(measurement)


class PubSubBroker(DistributionFramework):
    """Topic-routed delivery: only matching subscribers receive the packet."""

    def __init__(self, env: Environment, *, latency_s: float = 0.0):
        super().__init__(env, latency_s=latency_s)
        self._subscriptions: list[tuple[Optional[str], Optional[str],
                                        ConsumerCallback]] = []

    def subscribe(self, callback: ConsumerCallback, *,
                  service_id: Optional[str] = None,
                  qualified_name: Optional[str] = None) -> None:
        self._subscriptions.append((service_id, qualified_name, callback))

    def _deliver(self, packet: bytes) -> None:
        measurement = decode_measurement(packet)
        for service_id, pattern, callback in self._subscriptions:
            if service_id is not None and measurement.service_id != service_id:
                continue
            if pattern is not None and not fnmatch.fnmatchcase(
                    measurement.qualified_name, pattern):
                continue
            self.bytes_delivered += len(packet)  # only matched deliveries
            callback(measurement)
