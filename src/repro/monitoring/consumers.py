"""Measurement consumers.

The Service Manager's rule interpreter is the paper's flagship consumer: the
OCL semantics (§4.2.2) require it to append incoming events to
``monitoringRecords`` and, at evaluation time, read *the latest value for the
monitoring record with a specific qualified name*, falling back to a KPI's
declared default when no record exists yet. :class:`MeasurementStore`
implements exactly that contract; :class:`MeasurementJournal` additionally
keeps full history for the generated validation instruments (§4.2.3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Optional

from .distribution import DistributionFramework, Subscription
from .measurements import Measurement

__all__ = ["MeasurementStore", "MeasurementJournal"]


class MeasurementStore:
    """Latest-value store keyed by (service id, qualified name).

    Implements the ``RuleInterpreter::notify`` / ``evaluate(QualifiedElement)``
    OCL contract: each notification is recorded; queries return the latest
    value for the qualified name, or the supplied default.
    """

    __slots__ = ("_latest", "notifications", "_listeners")

    def __init__(self) -> None:
        self._latest: dict[tuple[str, str], Measurement] = {}
        self.notifications = 0
        self._listeners: list[Callable[[Measurement], None]] = []

    def notify(self, measurement: Measurement) -> None:
        """Record an incoming monitoring event (OCL: append to records)."""
        key = (measurement.service_id, measurement.qualified_name)
        self._latest[key] = measurement
        self.notifications += 1
        for listener in self._listeners:
            listener(measurement)

    def subscribe_to(self, network: DistributionFramework, *,
                     service_id: Optional[str] = None,
                     qualified_name: Optional[str] = None) -> Subscription:
        """Attach to a fabric; keep the returned handle to detach later."""
        return network.subscribe(self.notify, service_id=service_id,
                                 qualified_name=qualified_name)

    def add_listener(self, listener: Callable[[Measurement], None]) -> None:
        """Called on every notification — used to trigger rule evaluation."""
        self._listeners.append(listener)

    def latest(self, service_id: str, qualified_name: str
               ) -> Optional[Measurement]:
        return self._latest.get((service_id, qualified_name))

    def value(self, service_id: str, qualified_name: str,
              default: Any = None) -> Any:
        """OCL ``evaluate(qe: QualifiedElement)``: latest value or default."""
        m = self._latest.get((service_id, qualified_name))
        return m.value if m is not None else default

    def age(self, service_id: str, qualified_name: str,
            now: float) -> Optional[float]:
        """Seconds since the last event for this KPI, or None if never seen."""
        m = self._latest.get((service_id, qualified_name))
        return (now - m.timestamp) if m is not None else None

    def known_names(self, service_id: str) -> list[str]:
        return sorted(q for (s, q) in self._latest if s == service_id)


class MeasurementJournal:
    """Full-history consumer: every event kept, queryable by stream/time.

    Feeds the generated elasticity-validation instruments, which must replay
    "incoming monitoring events and [verify] where appropriate that suitable
    adjustment operations were invoked by matching entries and time frames in
    infrastructural logs" (§4.2.3).
    """

    __slots__ = ("_events", "_by_stream")

    def __init__(self) -> None:
        self._events: list[Measurement] = []
        self._by_stream: dict[tuple[str, str], list[Measurement]] = defaultdict(list)

    def notify(self, measurement: Measurement) -> None:
        self._events.append(measurement)
        key = (measurement.service_id, measurement.qualified_name)
        self._by_stream[key].append(measurement)

    def subscribe_to(self, network: DistributionFramework, *,
                     service_id: Optional[str] = None,
                     qualified_name: Optional[str] = None) -> Subscription:
        """Attach to a fabric; keep the returned handle to detach later."""
        return network.subscribe(self.notify, service_id=service_id,
                                 qualified_name=qualified_name)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def stream(self, service_id: str, qualified_name: str
               ) -> list[Measurement]:
        return list(self._by_stream.get((service_id, qualified_name), []))

    def window(self, service_id: str, qualified_name: str,
               since: float, until: float) -> list[Measurement]:
        # Iterate the internal stream list directly — stream() copies, and
        # window queries run on every periodic rule-engine pass.
        events = self._by_stream.get((service_id, qualified_name))
        if not events:
            return []
        return [m for m in events if since <= m.timestamp <= until]

    # -- window statistics (§4.2.1 time-series operations) --------------------
    def _window_values(self, service_id: str, qualified_name: str,
                       since: float, until: float) -> list[float]:
        return [float(m.value)
                for m in self.window(service_id, qualified_name, since, until)]

    def window_mean(self, service_id: str, qualified_name: str,
                    since: float, until: float) -> Optional[float]:
        values = self._window_values(service_id, qualified_name, since, until)
        return sum(values) / len(values) if values else None

    def window_min(self, service_id: str, qualified_name: str,
                   since: float, until: float) -> Optional[float]:
        values = self._window_values(service_id, qualified_name, since, until)
        return min(values) if values else None

    def window_max(self, service_id: str, qualified_name: str,
                   since: float, until: float) -> Optional[float]:
        values = self._window_values(service_id, qualified_name, since, until)
        return max(values) if values else None

    def gaps_exceeding(self, service_id: str, qualified_name: str,
                       max_gap_s: float) -> list[tuple[float, float]]:
        """Intervals where consecutive events were further apart than
        ``max_gap_s`` — a probe-health diagnostic."""
        events = self.stream(service_id, qualified_name)
        out = []
        for a, b in zip(events, events[1:]):
            if b.timestamp - a.timestamp > max_gap_s:
                out.append((a.timestamp, b.timestamp))
        return out
