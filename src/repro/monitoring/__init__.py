"""The RESERVOIR monitoring framework (§5.2 of the paper).

Producers and consumers of monitoring data joined by an interchangeable
distribution framework; probes describe themselves via data dictionaries held
in a DHT-backed information model, so measurements travel values-only in a
compact XDR encoding.
"""

from .adaptive import HIGH, LOW, NORMAL, AdaptiveRateController
from .agents import AggregatingKPI, MonitoringAgent
from .codec import (
    CodecError,
    PacketEncoder,
    PacketHeader,
    decode_measurement,
    decode_value,
    encode_measurement,
    encode_value,
    naive_json_size,
    peek_header,
)
from .consumers import MeasurementJournal, MeasurementStore
from .dht import DHTError, DHTNode, DHTRing
from .distribution import (
    DistributionFramework,
    MulticastChannel,
    PubSubBroker,
    Subscription,
    topic_for,
)
from .infomodel import ElaboratedValue, InformationModel
from .measurements import (
    AttributeType,
    DataDictionary,
    Measurement,
    ProbeAttribute,
    validate_qualified_name,
)
from .probes import DataSource, Probe
from .relay import MonitoringRelay

__all__ = [
    "HIGH",
    "LOW",
    "NORMAL",
    "AdaptiveRateController",
    "AggregatingKPI",
    "MonitoringAgent",
    "CodecError",
    "PacketEncoder",
    "PacketHeader",
    "decode_measurement",
    "decode_value",
    "encode_measurement",
    "encode_value",
    "naive_json_size",
    "peek_header",
    "MeasurementJournal",
    "MeasurementStore",
    "DHTError",
    "DHTNode",
    "DHTRing",
    "DistributionFramework",
    "MulticastChannel",
    "PubSubBroker",
    "Subscription",
    "topic_for",
    "ElaboratedValue",
    "InformationModel",
    "AttributeType",
    "DataDictionary",
    "Measurement",
    "ProbeAttribute",
    "validate_qualified_name",
    "DataSource",
    "Probe",
    "MonitoringRelay",
]
