"""Measurements and probe data dictionaries.

§5.2.4: "The actual measurements that get sent from a probe will contain the
attribute-value fields together with a type and a timestamp, plus some
identification fields ... the consumer of the data must be able to
differentiate the arriving data into the relevant streams" — identification
relies on the qualified names of §4.2.1 (e.g.
``uk.ucl.condor.schedd.queuesize``) plus a service identifier.

§5.2.3: "The Data Dictionary defines the attributes as the names, the types
and the units of the measurements that the probe will be sending out", and
measurements carry *values only* — the meta-data lives in the information
model (§5.2.7), so the wire encoding stays small.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Any, Sequence

__all__ = [
    "AttributeType",
    "ProbeAttribute",
    "DataDictionary",
    "Measurement",
    "QualifiedName",
    "validate_qualified_name",
]

#: Qualified names are dotted identifiers: letters/digits/underscore/hyphen
#: segments separated by dots, at least two segments.
_QNAME_RE = re.compile(r"^[A-Za-z0-9_\-]+(\.[A-Za-z0-9_\-]+)+$")

QualifiedName = str


def validate_qualified_name(name: str) -> str:
    """Validate and return a KPI qualified name.

    Raises ``ValueError`` for malformed names — catching these at manifest
    parse time, not when the first measurement arrives.
    """
    if not isinstance(name, str) or not _QNAME_RE.match(name):
        raise ValueError(f"malformed qualified name {name!r}")
    return name


class AttributeType(enum.Enum):
    """Wire types for probe values, mirroring the XDR subset used (§5.2.6)."""

    INTEGER = "integer"      # XDR 32-bit signed
    LONG = "long"            # XDR 64-bit signed (hyper)
    FLOAT = "float"          # XDR single-precision
    DOUBLE = "double"        # XDR double-precision
    BOOLEAN = "boolean"      # XDR bool (int 0/1)
    STRING = "string"        # XDR variable-length opaque/ascii

    @classmethod
    def for_python_value(cls, value: Any) -> "AttributeType":
        """The natural wire type for a Python value."""
        # bool is a subclass of int — test it first.
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.LONG if abs(value) > 2**31 - 1 else cls.INTEGER
        if isinstance(value, float):
            return cls.DOUBLE
        if isinstance(value, str):
            return cls.STRING
        raise TypeError(f"unsupported probe value type {type(value).__name__}")

    def accepts(self, value: Any) -> bool:
        """Whether a Python value can be carried as this wire type."""
        if self is AttributeType.BOOLEAN:
            return isinstance(value, bool)
        if self in (AttributeType.INTEGER, AttributeType.LONG):
            return isinstance(value, int) and not isinstance(value, bool)
        if self in (AttributeType.FLOAT, AttributeType.DOUBLE):
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeType.STRING:
            return isinstance(value, str)
        return False


@dataclass(frozen=True)
class ProbeAttribute:
    """One field a probe reports: name, wire type and units (§5.2.6)."""

    name: str
    type: AttributeType
    units: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")


@dataclass(frozen=True)
class DataDictionary:
    """The ordered attribute schema of a probe.

    "The consumers of the data can collect this information in order to
    determine what will be received" (§5.2.3). Field order matters: the wire
    format sends positional values that are re-associated via this schema.
    """

    attributes: tuple[ProbeAttribute, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {names}")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def index_of(self, name: str) -> int:
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise KeyError(f"no attribute {name!r} in data dictionary")

    def validate_values(self, values: Sequence[Any]) -> None:
        """Check a value tuple against the schema; raises on mismatch."""
        if len(values) != len(self.attributes):
            raise ValueError(
                f"expected {len(self.attributes)} values, got {len(values)}"
            )
        for attr, value in zip(self.attributes, values):
            if not attr.type.accepts(value):
                raise TypeError(
                    f"attribute {attr.name!r}: {value!r} is not a valid "
                    f"{attr.type.value}"
                )


@dataclass(frozen=True, slots=True)
class Measurement:
    """One monitoring event: identification + timestamp + positional values.

    ``qualified_name`` identifies the KPI stream; ``service_id`` scopes it to
    one service instance ("KPIs published within a network are tagged with a
    particular service identifier", §4.2.1); ``probe_id`` says which probe
    produced it. ``values`` align positionally with the probe's data
    dictionary.
    """

    qualified_name: QualifiedName
    service_id: str
    probe_id: str
    timestamp: float
    values: tuple[Any, ...]
    #: sequence number within the probe, for loss/ordering diagnostics
    seqno: int = 0

    def __post_init__(self) -> None:
        validate_qualified_name(self.qualified_name)
        if not self.service_id:
            raise ValueError("service_id must be non-empty")
        if not self.probe_id:
            raise ValueError("probe_id must be non-empty")

    @property
    def value(self) -> Any:
        """The first (often only) value — the common single-KPI case."""
        if not self.values:
            raise ValueError("measurement carries no values")
        return self.values[0]
