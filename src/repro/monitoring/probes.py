"""Data sources and probes.

§5.2.2: "to increase the power and flexibility of the monitoring we introduce
the concept of a data source. A data source represents an interaction and
control point within the system that encapsulates one or more probes. A probe
sends a well defined set of attributes and values to the consumers, defined
in a data dictionary. This can be done by transmitting the data out at a
predefined interval, or transmitting when some change has occurred."

Probes support the paper's control surface (Table 2): a data rate, an
``on``/``off`` switch (is the probe allowed to emit at all) and an
``active``/``inactive`` flag (is its periodic emission loop running) — this
is the mechanism by which "the management components only receive data that
is of relevance" (§5.2): probes not needed right now are turned off rather
than flooding the network.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence

from ..sim import Environment, Interrupt
from .codec import PacketEncoder
from .distribution import DistributionFramework
from .measurements import (
    DataDictionary,
    Measurement,
    ProbeAttribute,
    validate_qualified_name,
)

__all__ = ["Probe", "DataSource"]

#: A collector returns the current value tuple for a probe, or ``None`` to
#: skip this interval (nothing worth reporting).
Collector = Callable[[], Optional[Sequence[Any]]]

_probe_ids = itertools.count(1)
_datasource_ids = itertools.count(1)


class Probe:
    """One measurement stream: data dictionary + collector + emission loop."""

    def __init__(self, name: str, qualified_name: str,
                 attributes: Sequence[ProbeAttribute],
                 collector: Collector, *,
                 data_rate_s: float = 30.0):
        if not name:
            raise ValueError("probe name must be non-empty")
        if data_rate_s <= 0:
            raise ValueError("data rate must be positive")
        self.probe_id = f"probe-{next(_probe_ids)}"
        self.name = name
        self.qualified_name = validate_qualified_name(qualified_name)
        self.dictionary = DataDictionary(tuple(attributes))
        self.collector = collector
        self.data_rate_s = float(data_rate_s)
        self.on = True          # allowed to emit
        self.active = False     # emission loop currently running
        self._seq = itertools.count(1)
        self.datasource: Optional["DataSource"] = None
        self.measurements_sent = 0
        self._encoder: Optional[PacketEncoder] = None

    def take_measurement(self, env: Environment,
                         service_id: str) -> Optional[Measurement]:
        """Collect once and build the measurement (no sending)."""
        values = self.collector()
        if values is None:
            return None
        values = tuple(values)
        self.dictionary.validate_values(values)
        return Measurement(
            qualified_name=self.qualified_name,
            service_id=service_id,
            probe_id=self.probe_id,
            timestamp=env.now,
            values=values,
            seqno=next(self._seq),
        )

    def encode_packet(self, measurement: Measurement) -> bytes:
        """Wire bytes for one of this probe's measurements.

        Uses a cached :class:`PacketEncoder` — the probe's qualified name,
        probe id and (per data source) service id never change, so the
        header prefix is encoded once and steady-state encode cost is the
        per-packet fields only. Output is byte-identical to
        ``encode_measurement``.
        """
        encoder = self._encoder
        if encoder is None or encoder.service_id != measurement.service_id:
            encoder = self._encoder = PacketEncoder(
                self.qualified_name, measurement.service_id, self.probe_id)
        return encoder.encode(measurement)

    def turn_on(self) -> None:
        self.on = True

    def turn_off(self) -> None:
        self.on = False


class DataSource:
    """Groups probes and drives their periodic emission (the control point).

    A data source is attached to a distribution framework; it registers its
    probes in the information model on attach and keeps the model's
    ``active``/``on`` entries current as probes change state — "this
    information model can be updated at key points in the lifecycle of a
    probe" (§5.2.2).
    """

    def __init__(self, env: Environment, name: str, service_id: str,
                 network: DistributionFramework, *,
                 infomodel: Optional["InformationModel"] = None,
                 trace: Optional[Any] = None):
        if not name:
            raise ValueError("data source name must be non-empty")
        if not service_id:
            raise ValueError("service_id must be non-empty")
        self.env = env
        self.datasource_id = f"ds-{next(_datasource_ids)}"
        self.name = name
        self.service_id = service_id
        self.network = network
        self.infomodel = infomodel
        #: Optional TraceLog: when set, every publication runs inside a
        #: ``kpi.publish`` span — the root of the causal chain that links a
        #: measurement to the elasticity actions it eventually causes.
        #: Delivery at latency 0 is synchronous, so consumers notified during
        #: the publish see the span as ambient and can adopt it as a parent.
        self.trace = trace
        self.probes: dict[str, Probe] = {}
        self._loops: dict[str, Any] = {}

    def _publish(self, probe: Probe, measurement: Measurement) -> None:
        packet = probe.encode_packet(measurement)
        if self.trace is None:
            self.network.publish(measurement, packet=packet)
        else:
            with self.trace.span_scope(
                    "monitoring", "kpi.publish",
                    kpi=measurement.qualified_name,
                    service=self.service_id, probe=probe.probe_id):
                self.network.publish(measurement, packet=packet)
        probe.measurements_sent += 1

    # -- probe management ---------------------------------------------------
    def add_probe(self, probe: Probe, *, start: bool = True) -> Probe:
        if probe.name in self.probes:
            raise ValueError(f"duplicate probe name {probe.name!r}")
        probe.datasource = self
        self.probes[probe.name] = probe
        if self.infomodel is not None:
            self.infomodel.register_probe(self, probe)
        if start:
            self.start_probe(probe.name)
        return probe

    def start_probe(self, name: str) -> None:
        """Begin (or resume) the periodic emission loop for a probe."""
        probe = self.probes[name]
        if probe.active:
            return
        probe.active = True
        self._loops[name] = self.env.process(
            self._emission_loop(probe), name=f"probe:{probe.probe_id}"
        )
        self._sync_infomodel(probe)

    def stop_probe(self, name: str) -> None:
        probe = self.probes[name]
        if not probe.active:
            return
        probe.active = False
        loop = self._loops.pop(name, None)
        if loop is not None and loop.is_alive:
            loop.interrupt("probe stopped")
        self._sync_infomodel(probe)

    def set_data_rate(self, name: str, data_rate_s: float) -> None:
        """Change a probe's emission period (takes effect next interval)."""
        if data_rate_s <= 0:
            raise ValueError("data rate must be positive")
        probe = self.probes[name]
        probe.data_rate_s = float(data_rate_s)
        self._sync_infomodel(probe)

    def emit_now(self, name: str) -> Optional[Measurement]:
        """Transmit-on-change path: collect and publish immediately."""
        probe = self.probes[name]
        if not probe.on:
            return None
        measurement = probe.take_measurement(self.env, self.service_id)
        if measurement is not None:
            self._publish(probe, measurement)
        return measurement

    def emit_all_now(self) -> list[Measurement]:
        """Collect every ``on`` probe once and publish the results as one
        batch — packets sharing the fabric's latency edge cost a single
        kernel event (see ``DistributionFramework.publish_many``).

        With tracing enabled each measurement needs its own ``kpi.publish``
        span (causal attribution is per-KPI), so the batch degrades to
        per-probe publishes — attribution over coalescing.
        """
        if self.trace is not None:
            out: list[Measurement] = []
            for probe in self.probes.values():
                if not probe.on:
                    continue
                measurement = probe.take_measurement(self.env,
                                                     self.service_id)
                if measurement is None:
                    continue
                self._publish(probe, measurement)
                out.append(measurement)
            return out
        measurements: list[Measurement] = []
        packets: list[bytes] = []
        for probe in self.probes.values():
            if not probe.on:
                continue
            measurement = probe.take_measurement(self.env, self.service_id)
            if measurement is None:
                continue
            measurements.append(measurement)
            packets.append(probe.encode_packet(measurement))
            probe.measurements_sent += 1
        self.network.publish_many(measurements, packets=packets)
        return measurements

    # -- internals -----------------------------------------------------------
    def _emission_loop(self, probe: Probe):
        try:
            while probe.active:
                yield self.env.timeout(probe.data_rate_s)
                if not probe.active:
                    break
                if not probe.on:
                    continue
                measurement = probe.take_measurement(self.env, self.service_id)
                if measurement is not None:
                    self._publish(probe, measurement)
        except Interrupt:
            pass

    def _sync_infomodel(self, probe: Probe) -> None:
        if self.infomodel is not None:
            self.infomodel.update_probe_state(probe)


# Imported late to avoid a cycle (infomodel registers probes/data sources).
from .infomodel import InformationModel  # noqa: E402  (re-export for typing)
