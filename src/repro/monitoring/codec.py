"""XDR wire encoding for measurements.

§5.2.6: "The current implementation is written in Java, and the output for
each type currently uses XDR. As such each type defined uses the same byte
layout for each type as defined in the XDR specification. All of this type
data is used by a measurement decoder in order to determine the actual type
and size of the next piece of data in a packet."

We implement the XDR subset (RFC 4506) the monitoring system needs: int,
hyper, float, double, bool and string — big-endian, 4-byte aligned. Each
value on the wire is prefixed by a one-byte type tag so the decoder is
self-describing at the value level, while attribute *names and units* are
deliberately NOT transmitted ("the measurement meta-data is not transmitted
each time, but is kept separately in an information model", §5.2.2) — that
is the size saving the paper's design argues for, and the ablation bench
measures it against a naive JSON encoding.

Hot-path layout
---------------
Encoding and decoding run once per packet per fabric hop, so both sides are
table-driven: module-level :class:`struct.Struct` instances (compiled once),
a tag → decoder dispatch dict, and a type → encoder dispatch dict. Two fast
paths sit on top:

* :func:`peek_header` decodes only the routing fields (qualified name +
  service id) so the distribution framework can route a packet without
  materialising a :class:`Measurement`;
* :class:`PacketEncoder` caches a probe's encoded header prefix (magic,
  version, qualified name, service id, probe id — none of which change
  between one probe's packets), so steady-state encode is prefix + seqno +
  timestamp + values. Its output is byte-identical to
  :func:`encode_measurement`.

Every malformed-input path raises :class:`CodecError` — never a bare
``struct.error``, ``IndexError`` or ``UnicodeDecodeError`` — so consumers
need exactly one except clause per packet.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, NamedTuple

from .measurements import AttributeType, Measurement

__all__ = [
    "CodecError",
    "PacketEncoder",
    "PacketHeader",
    "encode_value",
    "decode_value",
    "encode_measurement",
    "decode_measurement",
    "peek_header",
    "naive_json_size",
]


class CodecError(Exception):
    """Malformed wire data or unsupported value."""


#: one-byte tags identifying the XDR type of the next value
_TAGS: dict[AttributeType, int] = {
    AttributeType.INTEGER: 0x01,
    AttributeType.LONG: 0x02,
    AttributeType.FLOAT: 0x03,
    AttributeType.DOUBLE: 0x04,
    AttributeType.BOOLEAN: 0x05,
    AttributeType.STRING: 0x06,
}
_TYPES = {tag: t for t, tag in _TAGS.items()}

#: compiled wire structs, shared by every encoder/decoder
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F32 = struct.Struct(">f")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")


def _pad4(n: int) -> int:
    """Bytes of zero padding to reach 4-byte alignment (XDR rule)."""
    return (4 - n % 4) % 4


# ---------------------------------------------------------------------------
# Value encoders: AttributeType -> bytes
# ---------------------------------------------------------------------------

def _make_fixed_encoder(tag: int, packer: struct.Struct):
    prefix = bytes([tag])
    pack = packer.pack

    def encode(value: Any) -> bytes:
        return prefix + pack(value)

    return encode


_TAG_BOOL = bytes([_TAGS[AttributeType.BOOLEAN]])
_TAG_STR = bytes([_TAGS[AttributeType.STRING]])


def _encode_bool(value: Any) -> bytes:
    return _TAG_BOOL + _I32.pack(1 if value else 0)


def _encode_string(value: str) -> bytes:
    raw = value.encode("utf-8")
    return (_TAG_STR + _U32.pack(len(raw)) + raw
            + b"\x00" * _pad4(len(raw)))


_ENCODERS: dict[AttributeType, Callable[[Any], bytes]] = {
    AttributeType.INTEGER: _make_fixed_encoder(_TAGS[AttributeType.INTEGER], _I32),
    AttributeType.LONG: _make_fixed_encoder(_TAGS[AttributeType.LONG], _I64),
    AttributeType.FLOAT: _make_fixed_encoder(_TAGS[AttributeType.FLOAT], _F32),
    AttributeType.DOUBLE: _make_fixed_encoder(_TAGS[AttributeType.DOUBLE], _F64),
    AttributeType.BOOLEAN: _encode_bool,
    AttributeType.STRING: _encode_string,
}


def encode_value(value: Any, type_: AttributeType | None = None) -> bytes:
    """Encode one value as tag + XDR body."""
    t = type_ or AttributeType.for_python_value(value)
    if not t.accepts(value):
        raise CodecError(f"{value!r} is not a valid {t.value}")
    try:
        encoder = _ENCODERS[t]
    except KeyError:
        raise CodecError(f"unsupported type {t}") from None  # pragma: no cover
    try:
        return encoder(value)
    except struct.error as exc:
        raise CodecError(f"{value!r} does not fit {t.value}: {exc}") from exc


# ---------------------------------------------------------------------------
# Value decoders: tag -> (buf, offset-past-tag) -> (value, next offset)
# ---------------------------------------------------------------------------

def _make_fixed_decoder(packer: struct.Struct,
                        cast: Callable[[Any], Any] | None = None):
    unpack_from = packer.unpack_from
    size = packer.size
    if cast is None:
        def decode(buf: bytes, offset: int):
            try:
                return unpack_from(buf, offset)[0], offset + size
            except struct.error as exc:
                raise CodecError(f"truncated buffer: {exc}") from exc
    else:
        def decode(buf: bytes, offset: int):
            try:
                return cast(unpack_from(buf, offset)[0]), offset + size
            except struct.error as exc:
                raise CodecError(f"truncated buffer: {exc}") from exc
    return decode


def _decode_string(buf: bytes, offset: int):
    try:
        (length,) = _U32.unpack_from(buf, offset)
    except struct.error as exc:
        raise CodecError(f"truncated buffer: {exc}") from exc
    offset += 4
    end = offset + length
    padded_end = end + _pad4(length)
    if padded_end > len(buf):
        raise CodecError("truncated string body")
    try:
        return buf[offset:end].decode("utf-8"), padded_end
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8 in string body: {exc}") from exc


_DECODERS: dict[int, Callable[[bytes, int], tuple[Any, int]]] = {
    _TAGS[AttributeType.INTEGER]: _make_fixed_decoder(_I32),
    _TAGS[AttributeType.LONG]: _make_fixed_decoder(_I64),
    _TAGS[AttributeType.FLOAT]: _make_fixed_decoder(_F32),
    _TAGS[AttributeType.DOUBLE]: _make_fixed_decoder(_F64),
    _TAGS[AttributeType.BOOLEAN]: _make_fixed_decoder(_I32, bool),
    _TAGS[AttributeType.STRING]: _decode_string,
}


def decode_value(buf: bytes, offset: int = 0) -> tuple[Any, int]:
    """Decode one tagged value; returns (value, next offset)."""
    try:
        decoder = _DECODERS[buf[offset]]
    except IndexError:
        raise CodecError("truncated buffer: no type tag") from None
    except KeyError:
        raise CodecError(f"unknown type tag {buf[offset]:#x}") from None
    return decoder(buf, offset + 1)


# ---------------------------------------------------------------------------
# Measurement packets
# ---------------------------------------------------------------------------

#: wire-format magic + version, guarding against stream desync
_MAGIC = b"RMON"
_VERSION = 1

#: the fixed first 8 bytes of every packet
_HEADER_PREFIX = _MAGIC + _U32.pack(_VERSION)


class PacketHeader(NamedTuple):
    """The routing fields of a packet, decoded by :func:`peek_header`."""

    qualified_name: str
    service_id: str
    #: offset of the first byte after the service id (the probe id value);
    #: a full decode can resume here without re-reading the routing fields.
    body_offset: int


def _check_preamble(buf: bytes) -> None:
    if buf[:4] != _MAGIC:
        raise CodecError("bad magic: not a measurement packet")
    try:
        (version,) = _U32.unpack_from(buf, 4)
    except struct.error as exc:
        raise CodecError("truncated header") from exc
    if version != _VERSION:
        raise CodecError(f"unsupported wire version {version}")


_STR_TAG = _TAGS[AttributeType.STRING]


def peek_header(buf: bytes) -> PacketHeader:
    """Decode just enough of a packet to route it.

    Returns the qualified name and service id without touching the probe id,
    seqno, timestamp or values — the distribution framework uses this to
    decide whether anyone wants the packet before paying for a full decode.
    """
    # Fast path: well-formed packet with in-range string routing fields,
    # parsed inline without the per-value dispatch. Any irregularity falls
    # through to the strict parse below for the precise CodecError.
    n = len(buf)
    try:
        if buf[:8] == _HEADER_PREFIX and buf[8] == _STR_TAG:
            (length,) = _U32.unpack_from(buf, 9)
            end = 13 + length
            offset = end + (-length % 4)
            if offset < n and buf[offset] == _STR_TAG:
                qname = buf[13:end].decode("utf-8")
                (length,) = _U32.unpack_from(buf, offset + 1)
                start = offset + 5
                end = start + length
                offset = end + (-length % 4)
                if offset <= n:
                    return PacketHeader(qname, buf[start:end].decode("utf-8"),
                                        offset)
    except (struct.error, UnicodeDecodeError, IndexError):
        pass
    _check_preamble(buf)
    qname, offset = decode_value(buf, 8)
    service_id, offset = decode_value(buf, offset)
    if type(qname) is not str or type(service_id) is not str:
        raise CodecError("malformed header: routing fields must be strings")
    return PacketHeader(qname, service_id, offset)


def encode_measurement(m: Measurement) -> bytes:
    """Encode a full measurement packet.

    Layout: magic, version, qualified name, service id, probe id, seqno
    (hyper), timestamp (double), value count (int), then tagged values.
    """
    parts = [
        _HEADER_PREFIX,
        encode_value(m.qualified_name),
        encode_value(m.service_id),
        encode_value(m.probe_id),
        encode_value(m.seqno, AttributeType.LONG),
        encode_value(m.timestamp, AttributeType.DOUBLE),
        _U32.pack(len(m.values)),
    ]
    parts.extend(encode_value(v) for v in m.values)
    return b"".join(parts)


class PacketEncoder:
    """Per-probe encoder caching the constant header prefix.

    A probe's qualified name, service id and probe id never change between
    its packets, so the tag-prefixed XDR encoding of those three strings
    (plus magic and version) is computed once here; each :meth:`encode` call
    then appends only the per-packet fields. Output is byte-identical to
    :func:`encode_measurement`, which tests assert.
    """

    __slots__ = ("qualified_name", "service_id", "probe_id", "_prefix")

    def __init__(self, qualified_name: str, service_id: str, probe_id: str):
        self.qualified_name = qualified_name
        self.service_id = service_id
        self.probe_id = probe_id
        self._prefix = (
            _HEADER_PREFIX
            + encode_value(qualified_name, AttributeType.STRING)
            + encode_value(service_id, AttributeType.STRING)
            + encode_value(probe_id, AttributeType.STRING)
        )

    def encode(self, m: Measurement) -> bytes:
        if (m.qualified_name != self.qualified_name
                or m.service_id != self.service_id
                or m.probe_id != self.probe_id):
            raise CodecError(
                f"measurement identity {(m.qualified_name, m.service_id, m.probe_id)!r}"
                f" does not match encoder identity "
                f"{(self.qualified_name, self.service_id, self.probe_id)!r}"
            )
        parts = [
            self._prefix,
            encode_value(m.seqno, AttributeType.LONG),
            encode_value(m.timestamp, AttributeType.DOUBLE),
            _U32.pack(len(m.values)),
        ]
        parts.extend(encode_value(v) for v in m.values)
        return b"".join(parts)


_LONG_TAG = _TAGS[AttributeType.LONG]
_DOUBLE_TAG = _TAGS[AttributeType.DOUBLE]


def _decode_tail_fast(buf: bytes, offset: int):
    """Inline parse of the canonical packet tail (string probe id, hyper
    seqno, double timestamp) — the layout :func:`encode_measurement` always
    produces. Returns ``None`` on any other layout or irregularity so the
    caller can fall back to the strict per-value dispatch."""
    try:
        if buf[offset] != _STR_TAG:
            return None
        (length,) = _U32.unpack_from(buf, offset + 1)
        start = offset + 5
        end = start + length
        offset = end + (-length % 4)
        # 18 = two tag bytes + 8-byte hyper + 8-byte double
        if (offset + 18 > len(buf) or buf[offset] != _LONG_TAG
                or buf[offset + 9] != _DOUBLE_TAG):
            return None
        probe_id = buf[start:end].decode("utf-8")
        (seqno,) = _I64.unpack_from(buf, offset + 1)
        (timestamp,) = _F64.unpack_from(buf, offset + 10)
        return probe_id, seqno, timestamp, offset + 18
    except (struct.error, UnicodeDecodeError, IndexError):
        return None


def decode_measurement(buf: bytes, *,
                       header: PacketHeader | None = None) -> Measurement:
    """Decode a packet produced by :func:`encode_measurement`.

    A caller that already routed the packet via :func:`peek_header` can pass
    that header back to resume the decode at ``body_offset`` instead of
    re-parsing the preamble and routing strings.
    """
    if header is None:
        _check_preamble(buf)
        qname, offset = decode_value(buf, 8)
        service_id, offset = decode_value(buf, offset)
    else:
        qname, service_id, offset = header
    tail = _decode_tail_fast(buf, offset)
    if tail is not None:
        probe_id, seqno, timestamp, offset = tail
    else:
        probe_id, offset = decode_value(buf, offset)
        seqno, offset = decode_value(buf, offset)
        timestamp, offset = decode_value(buf, offset)
    try:
        (count,) = _U32.unpack_from(buf, offset)
    except struct.error as exc:
        raise CodecError("truncated value count") from exc
    offset += 4
    values = []
    for _ in range(count):
        value, offset = decode_value(buf, offset)
        values.append(value)
    try:
        return Measurement(
            qualified_name=qname, service_id=service_id, probe_id=probe_id,
            timestamp=timestamp, values=tuple(values), seqno=seqno,
        )
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed measurement fields: {exc}") from exc


def naive_json_size(m: Measurement, attribute_names: list[str],
                    units: list[str]) -> int:
    """Bytes a self-describing JSON encoding would need for the same event.

    The comparison baseline for the codec-size ablation: sending names,
    units and values in every packet (what the information-model split
    avoids).
    """
    doc = {
        "qualified_name": m.qualified_name,
        "service_id": m.service_id,
        "probe_id": m.probe_id,
        "seqno": m.seqno,
        "timestamp": m.timestamp,
        "values": [
            {"name": n, "units": u, "value": v}
            for n, u, v in zip(attribute_names, units, m.values)
        ],
    }
    return len(json.dumps(doc).encode("utf-8"))
