"""XDR wire encoding for measurements.

§5.2.6: "The current implementation is written in Java, and the output for
each type currently uses XDR. As such each type defined uses the same byte
layout for each type as defined in the XDR specification. All of this type
data is used by a measurement decoder in order to determine the actual type
and size of the next piece of data in a packet."

We implement the XDR subset (RFC 4506) the monitoring system needs: int,
hyper, float, double, bool and string — big-endian, 4-byte aligned. Each
value on the wire is prefixed by a one-byte type tag so the decoder is
self-describing at the value level, while attribute *names and units* are
deliberately NOT transmitted ("the measurement meta-data is not transmitted
each time, but is kept separately in an information model", §5.2.2) — that
is the size saving the paper's design argues for, and the ablation bench
measures it against a naive JSON encoding.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from .measurements import AttributeType, Measurement

__all__ = [
    "CodecError",
    "encode_value",
    "decode_value",
    "encode_measurement",
    "decode_measurement",
    "naive_json_size",
]


class CodecError(Exception):
    """Malformed wire data or unsupported value."""


#: one-byte tags identifying the XDR type of the next value
_TAGS: dict[AttributeType, int] = {
    AttributeType.INTEGER: 0x01,
    AttributeType.LONG: 0x02,
    AttributeType.FLOAT: 0x03,
    AttributeType.DOUBLE: 0x04,
    AttributeType.BOOLEAN: 0x05,
    AttributeType.STRING: 0x06,
}
_TYPES = {tag: t for t, tag in _TAGS.items()}


def _pad4(n: int) -> int:
    """Bytes of zero padding to reach 4-byte alignment (XDR rule)."""
    return (4 - n % 4) % 4


def encode_value(value: Any, type_: AttributeType | None = None) -> bytes:
    """Encode one value as tag + XDR body."""
    t = type_ or AttributeType.for_python_value(value)
    if not t.accepts(value):
        raise CodecError(f"{value!r} is not a valid {t.value}")
    tag = bytes([_TAGS[t]])
    if t is AttributeType.INTEGER:
        return tag + struct.pack(">i", value)
    if t is AttributeType.LONG:
        return tag + struct.pack(">q", value)
    if t is AttributeType.FLOAT:
        return tag + struct.pack(">f", value)
    if t is AttributeType.DOUBLE:
        return tag + struct.pack(">d", value)
    if t is AttributeType.BOOLEAN:
        return tag + struct.pack(">i", 1 if value else 0)
    if t is AttributeType.STRING:
        raw = value.encode("utf-8")
        return (tag + struct.pack(">I", len(raw)) + raw
                + b"\x00" * _pad4(len(raw)))
    raise CodecError(f"unsupported type {t}")  # pragma: no cover


def decode_value(buf: bytes, offset: int = 0) -> tuple[Any, int]:
    """Decode one tagged value; returns (value, next offset)."""
    if offset >= len(buf):
        raise CodecError("truncated buffer: no type tag")
    try:
        t = _TYPES[buf[offset]]
    except KeyError:
        raise CodecError(f"unknown type tag {buf[offset]:#x}") from None
    offset += 1
    try:
        if t is AttributeType.INTEGER:
            return struct.unpack_from(">i", buf, offset)[0], offset + 4
        if t is AttributeType.LONG:
            return struct.unpack_from(">q", buf, offset)[0], offset + 8
        if t is AttributeType.FLOAT:
            return struct.unpack_from(">f", buf, offset)[0], offset + 4
        if t is AttributeType.DOUBLE:
            return struct.unpack_from(">d", buf, offset)[0], offset + 8
        if t is AttributeType.BOOLEAN:
            return bool(struct.unpack_from(">i", buf, offset)[0]), offset + 4
        if t is AttributeType.STRING:
            (length,) = struct.unpack_from(">I", buf, offset)
            offset += 4
            end = offset + length
            padded_end = end + _pad4(length)
            if padded_end > len(buf):
                raise CodecError("truncated string body")
            value = buf[offset:end].decode("utf-8")
            return value, padded_end
    except struct.error as exc:
        raise CodecError(f"truncated buffer: {exc}") from exc
    raise CodecError(f"unsupported type {t}")  # pragma: no cover


#: wire-format magic + version, guarding against stream desync
_MAGIC = b"RMON"
_VERSION = 1


def encode_measurement(m: Measurement) -> bytes:
    """Encode a full measurement packet.

    Layout: magic, version, qualified name, service id, probe id, seqno
    (hyper), timestamp (double), value count (int), then tagged values.
    """
    parts = [
        _MAGIC,
        struct.pack(">I", _VERSION),
        encode_value(m.qualified_name),
        encode_value(m.service_id),
        encode_value(m.probe_id),
        encode_value(m.seqno, AttributeType.LONG),
        encode_value(m.timestamp, AttributeType.DOUBLE),
        struct.pack(">I", len(m.values)),
    ]
    parts.extend(encode_value(v) for v in m.values)
    return b"".join(parts)


def decode_measurement(buf: bytes) -> Measurement:
    """Decode a packet produced by :func:`encode_measurement`."""
    if buf[:4] != _MAGIC:
        raise CodecError("bad magic: not a measurement packet")
    (version,) = struct.unpack_from(">I", buf, 4)
    if version != _VERSION:
        raise CodecError(f"unsupported wire version {version}")
    offset = 8
    qname, offset = decode_value(buf, offset)
    service_id, offset = decode_value(buf, offset)
    probe_id, offset = decode_value(buf, offset)
    seqno, offset = decode_value(buf, offset)
    timestamp, offset = decode_value(buf, offset)
    try:
        (count,) = struct.unpack_from(">I", buf, offset)
    except struct.error as exc:
        raise CodecError("truncated value count") from exc
    offset += 4
    values = []
    for _ in range(count):
        value, offset = decode_value(buf, offset)
        values.append(value)
    return Measurement(
        qualified_name=qname, service_id=service_id, probe_id=probe_id,
        timestamp=timestamp, values=tuple(values), seqno=seqno,
    )


def naive_json_size(m: Measurement, attribute_names: list[str],
                    units: list[str]) -> int:
    """Bytes a self-describing JSON encoding would need for the same event.

    The comparison baseline for the codec-size ablation: sending names,
    units and values in every packet (what the information-model split
    avoids).
    """
    doc = {
        "qualified_name": m.qualified_name,
        "service_id": m.service_id,
        "probe_id": m.probe_id,
        "seqno": m.seqno,
        "timestamp": m.timestamp,
        "values": [
            {"name": n, "units": u, "value": v}
            for n, u, v in zip(attribute_names, units, m.values)
        ],
    }
    return len(json.dumps(doc).encode("utf-8"))
