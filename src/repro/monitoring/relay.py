"""Cross-domain monitoring relay.

§5.2 requires "**Federation**: so that any virtual resource which reside on
another domain is monitored correctly." In a federated deployment each site
runs its own distribution framework; when a service's components are spread
across sites (or migrate to another domain), the managing site's consumers —
the rule engine above all — must still see the measurements produced there.

:class:`MonitoringRelay` bridges site-local frameworks: it subscribes to a
remote site's fabric (optionally filtered to the service ids the local
Service Manager actually manages), re-publishes matching measurements on the
local fabric after a WAN latency, and suppresses forwarding loops when two
relays bridge the same pair of sites in both directions.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment
from .distribution import DistributionFramework
from .measurements import Measurement

__all__ = ["MonitoringRelay"]


class MonitoringRelay:
    """Forwards measurements from one distribution framework to another."""

    def __init__(self, env: Environment, *,
                 source: DistributionFramework,
                 target: DistributionFramework,
                 service_ids: Optional[set[str]] = None,
                 wan_latency_s: float = 0.2):
        if source is target:
            raise ValueError("relay source and target must differ")
        if wan_latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.source = source
        self.target = target
        #: forward only these services' streams; None forwards everything
        self.service_ids = set(service_ids) if service_ids is not None else None
        self.wan_latency_s = wan_latency_s
        #: (service id, qualified name, seqno, probe) of recently relayed
        #: events, to break forwarding loops between paired relays
        self._recently_forwarded: set[tuple] = set()
        self.forwarded = 0
        self.suppressed = 0
        self.enabled = True
        self._subscription = source.subscribe(self._on_measurement)

    # ------------------------------------------------------------------
    def _key(self, m: Measurement) -> tuple:
        return (m.service_id, m.qualified_name, m.probe_id, m.seqno)

    def mark_local(self, m: Measurement) -> None:
        """Tell this relay a measurement originated on *its own* target —
        its paired reverse relay calls this so echoes are suppressed."""
        self._recently_forwarded.add(self._key(m))

    @classmethod
    def bridge(cls, env: Environment, a: DistributionFramework,
               b: DistributionFramework, *,
               service_ids: Optional[set[str]] = None,
               wan_latency_s: float = 0.2
               ) -> tuple["MonitoringRelay", "MonitoringRelay"]:
        """Bidirectional bridge with loop suppression between two sites."""
        ab = cls(env, source=a, target=b, service_ids=service_ids,
                 wan_latency_s=wan_latency_s)
        ba = cls(env, source=b, target=a, service_ids=service_ids,
                 wan_latency_s=wan_latency_s)
        ab._pair = ba
        ba._pair = ab
        return ab, ba

    _pair: Optional["MonitoringRelay"] = None

    # ------------------------------------------------------------------
    def _on_measurement(self, m: Measurement) -> None:
        if not self.enabled:
            return
        if self.service_ids is not None and m.service_id not in self.service_ids:
            return
        key = self._key(m)
        if key in self._recently_forwarded:
            # This event just arrived over this very bridge: don't echo.
            self._recently_forwarded.discard(key)
            self.suppressed += 1
            return
        self.env.process(self._forward(m), name="monitoring-relay")

    def _forward(self, m: Measurement):
        yield self.env.timeout(self.wan_latency_s)
        if self._pair is not None:
            self._pair.mark_local(m)
        self.target.publish(m)
        self.forwarded += 1

    def stop(self) -> None:
        """Disable forwarding and release the source-side subscription so a
        retired relay no longer occupies the fabric's routing structures."""
        self.enabled = False
        self._subscription.cancel()
