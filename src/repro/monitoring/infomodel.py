"""The monitoring information model.

§5.2.7: "The Information Model for the Monitoring System holds all of the
data about Data Sources, Probes, and Probe Data Dictionaries present in a
running system. As Measurements are sent with only the values for the current
reading, the meta-data needs to [be] kept for lookup purposes."

The key taxonomy follows the paper's Tables 1 and 2 exactly:

========================================  =================================
Key                                       Value
========================================  =================================
``/datasource/<ds-id>/name``              data source name
``/probe/<probe-id>/datasource``          owning data source id
``/probe/<probe-id>/name``                probe name
``/probe/<probe-id>/datarate``            probe data rate
``/probe/<probe-id>/on``                  is the probe on or off
``/probe/<probe-id>/active``              is the probe active or inactive
``/schema/<probe-id>/size``               number of attributes N
``/schema/<probe-id>/<i>/name``           name of probe attribute *i*
``/schema/<probe-id>/<i>/type``           type of probe attribute *i*
``/schema/<probe-id>/<i>/units``          units of probe attribute *i*
========================================  =================================

Storage is the DHT of :mod:`repro.monitoring.dht`; consumers use
:meth:`InformationModel.elaborate` to turn a values-only measurement into the
full attribute/value/units view ("the consumer can lookup in the data
dictionary to elaborate the full attribute value set", §5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from .dht import DHTRing
from .measurements import AttributeType, DataDictionary, Measurement, ProbeAttribute

if TYPE_CHECKING:  # pragma: no cover
    from .probes import DataSource, Probe

__all__ = ["ElaboratedValue", "InformationModel"]


@dataclass(frozen=True)
class ElaboratedValue:
    """One measurement value joined with its schema metadata."""

    name: str
    type: AttributeType
    units: str
    value: Any


class InformationModel:
    """Path-taxonomy metadata store over a DHT."""

    def __init__(self, ring: Optional[DHTRing] = None, *,
                 initial_nodes: int = 3):
        if ring is None:
            ring = DHTRing()
            for i in range(max(initial_nodes, 1)):
                ring.join(f"im-node-{i}")
        self.ring = ring

    # -- registration (producer side) ---------------------------------------
    def register_datasource(self, datasource: "DataSource") -> None:
        self.ring.put(f"/datasource/{datasource.datasource_id}/name",
                      datasource.name)

    def register_probe(self, datasource: "DataSource", probe: "Probe") -> None:
        """Publish a probe's identity, control state and data dictionary."""
        self.register_datasource(datasource)
        pid = probe.probe_id
        self.ring.put(f"/probe/{pid}/datasource", datasource.datasource_id)
        self.ring.put(f"/probe/{pid}/name", probe.name)
        self.ring.put(f"/probe/{pid}/qualifiedname", probe.qualified_name)
        self.update_probe_state(probe)
        schema = probe.dictionary
        self.ring.put(f"/schema/{pid}/size", len(schema))
        for i, attr in enumerate(schema):
            self.ring.put(f"/schema/{pid}/{i}/name", attr.name)
            self.ring.put(f"/schema/{pid}/{i}/type", attr.type.value)
            self.ring.put(f"/schema/{pid}/{i}/units", attr.units)

    def update_probe_state(self, probe: "Probe") -> None:
        """Refresh the mutable control entries (Table 2 rows 2–4)."""
        pid = probe.probe_id
        self.ring.put(f"/probe/{pid}/datarate", probe.data_rate_s)
        self.ring.put(f"/probe/{pid}/on", probe.on)
        self.ring.put(f"/probe/{pid}/active", probe.active)

    def unregister_probe(self, probe: "Probe") -> None:
        pid = probe.probe_id
        for key in self.ring.keys_with_prefix(f"/probe/{pid}/"):
            self.ring.delete(key)
        for key in self.ring.keys_with_prefix(f"/schema/{pid}/"):
            self.ring.delete(key)

    # -- lookup (consumer side) ------------------------------------------------
    def datasource_of(self, probe_id: str) -> Optional[str]:
        return self.ring.get(f"/probe/{probe_id}/datasource")

    def probe_name(self, probe_id: str) -> Optional[str]:
        return self.ring.get(f"/probe/{probe_id}/name")

    def probe_state(self, probe_id: str) -> dict[str, Any]:
        return {
            "datarate": self.ring.get(f"/probe/{probe_id}/datarate"),
            "on": self.ring.get(f"/probe/{probe_id}/on"),
            "active": self.ring.get(f"/probe/{probe_id}/active"),
        }

    def schema_of(self, probe_id: str) -> Optional[DataDictionary]:
        size = self.ring.get(f"/schema/{probe_id}/size")
        if size is None:
            return None
        attributes = []
        for i in range(size):
            name = self.ring.get(f"/schema/{probe_id}/{i}/name")
            type_value = self.ring.get(f"/schema/{probe_id}/{i}/type")
            units = self.ring.get(f"/schema/{probe_id}/{i}/units", "")
            if name is None or type_value is None:
                return None  # incomplete registration
            attributes.append(ProbeAttribute(
                name=name, type=AttributeType(type_value), units=units,
            ))
        return DataDictionary(tuple(attributes))

    def elaborate(self, measurement: Measurement) -> list[ElaboratedValue]:
        """Join a values-only measurement with its schema (§5.2.3)."""
        schema = self.schema_of(measurement.probe_id)
        if schema is None:
            raise KeyError(
                f"probe {measurement.probe_id!r} has no registered schema"
            )
        if len(measurement.values) != len(schema):
            raise ValueError(
                f"measurement carries {len(measurement.values)} values but "
                f"schema defines {len(schema)} attributes"
            )
        return [
            ElaboratedValue(name=attr.name, type=attr.type, units=attr.units,
                            value=value)
            for attr, value in zip(schema, measurement.values)
        ]

    def known_probes(self) -> list[str]:
        """All registered probe ids (scatter/gather over the ring)."""
        ids = set()
        for key in self.ring.keys_with_prefix("/probe/"):
            ids.add(key.split("/")[2])
        return sorted(ids)
