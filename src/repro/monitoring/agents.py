"""Application-level monitoring agents.

§4.2.1: "A service provider is expected to expose parameters of interest
through local Monitoring Agents, responsible for gathering suitable
application level measurements and communicating these to the service
management infrastructure ... The monitoring agent would be responsible for
such queries and forwarding obtained responses, bridging the gap between
application and monitoring infrastructure."

A :class:`MonitoringAgent` binds application-side value functions (e.g.
"query the Condor schedd for its queue length") to the KPI qualified names
the manifest declared, at the declared frequency. Agents can also perform
client-side aggregation ("this can be achieved by aggregating measurements at
the application level, with the monitoring agent performing such tasks",
§4.2.1) via :class:`AggregatingKPI`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..sim import Environment
from .distribution import DistributionFramework
from .infomodel import InformationModel
from .measurements import AttributeType, ProbeAttribute
from .probes import DataSource, Probe

__all__ = ["MonitoringAgent", "AggregatingKPI"]

#: Application hook returning the current KPI value (int/float/str/bool).
ValueFunction = Callable[[], Any]


class AggregatingKPI:
    """Sliding-window aggregation applied before publication.

    Wraps a raw value function; each sample enters a bounded window and the
    published value is the window's ``mean``/``min``/``max``/``last`` — the
    paper's suggested way "to limit the impact of strong fluctuations".
    """

    OPERATIONS = ("mean", "min", "max", "last")

    __slots__ = ("raw", "operation", "samples")

    def __init__(self, raw: ValueFunction, *, operation: str = "mean",
                 window: int = 5):
        if operation not in self.OPERATIONS:
            raise ValueError(
                f"operation must be one of {self.OPERATIONS}, got {operation!r}"
            )
        if window <= 0:
            raise ValueError("window must be positive")
        self.raw = raw
        self.operation = operation
        self.samples: deque[float] = deque(maxlen=window)

    def __call__(self) -> Optional[float]:
        value = self.raw()
        if value is None:
            return None
        self.samples.append(float(value))
        if self.operation == "mean":
            return sum(self.samples) / len(self.samples)
        if self.operation == "min":
            return min(self.samples)
        if self.operation == "max":
            return max(self.samples)
        return self.samples[-1]


class MonitoringAgent:
    """Publishes application KPIs under their manifest qualified names."""

    def __init__(self, env: Environment, *, service_id: str,
                 component: str, network: DistributionFramework,
                 infomodel: Optional[InformationModel] = None,
                 trace=None):
        if not component:
            raise ValueError("component must be non-empty")
        self.env = env
        self.service_id = service_id
        self.component = component
        self.datasource = DataSource(
            env, name=f"agent:{component}", service_id=service_id,
            network=network, infomodel=infomodel, trace=trace,
        )

    def expose(self, qualified_name: str, value_fn: ValueFunction, *,
               frequency_s: float = 30.0, units: str = "",
               type: AttributeType = AttributeType.INTEGER,
               aggregate: Optional[str] = None,
               window: int = 5, start: bool = True) -> Probe:
        """Expose one KPI.

        ``aggregate`` (one of ``mean``/``min``/``max``) wraps the value
        function in an :class:`AggregatingKPI` window. The value function may
        return ``None`` to skip an interval. Values are coerced to the
        declared wire type, so an application returning ``numpy`` scalars or
        a float where an int was declared does not poison the stream.
        """
        if aggregate is not None:
            value_fn = AggregatingKPI(value_fn, operation=aggregate,
                                      window=window)

        def collector() -> Optional[tuple]:
            value = value_fn()
            if value is None:
                return None
            return (_coerce(value, type),)

        short_name = qualified_name.rsplit(".", 1)[-1]
        probe = Probe(
            name=f"{self.component}:{qualified_name}",
            qualified_name=qualified_name,
            attributes=[ProbeAttribute(short_name, type, units)],
            collector=collector,
            data_rate_s=frequency_s,
        )
        self.datasource.add_probe(probe, start=start)
        return probe

    def stop(self) -> None:
        for name in list(self.datasource.probes):
            self.datasource.stop_probe(name)

    def emit_all_now(self) -> None:
        """Sample every exposed KPI immediately and publish as one batch."""
        self.datasource.emit_all_now()


#: declared wire type -> Python conversion, resolved per sample on the
#: emission hot path (a dict hit instead of an if-chain)
_COERCERS: dict[AttributeType, Any] = {
    AttributeType.INTEGER: int,
    AttributeType.LONG: int,
    AttributeType.FLOAT: float,
    AttributeType.DOUBLE: float,
    AttributeType.BOOLEAN: bool,
    AttributeType.STRING: str,
}


def _coerce(value: Any, type_: AttributeType) -> Any:
    """Convert an application value to the declared wire type."""
    try:
        coerce = _COERCERS[type_]
    except KeyError:
        raise TypeError(f"unsupported type {type_}")  # pragma: no cover
    return coerce(value)
