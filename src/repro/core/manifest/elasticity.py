"""Elasticity rules: Event-Condition-Action capacity adjustment.

§4.2.1 / Fig. 4: "we adopt an Event-Condition-Action approach to rule
specification ... Based on monitoring events obtained from the
infrastructure, particular actions from the VEEM are to be requested when
certain conditions relating to these events hold true ... The operations,
modelled on the OpenNebula framework capabilities will involve the
submission, shutdown, migration, reconfiguration, etc. of VMs and should be
invoked within a particular time frame."

Concrete XML (§6.1.2)::

    <ElasticityRule name="AdjustClusterSizeUp">
      <Trigger>
        <TimeConstraint unit="ms">5000</TimeConstraint>
        <Expression>
          (@uk.ucl.condor.schedd.queuesize /
           (@uk.ucl.condor.exec.instances.size + 1) > 4) &&
          (@uk.ucl.condor.exec.instances.size < 16)
        </Expression>
      </Trigger>
      <Action run="deployVM(uk.ucl.condor.exec.ref)"/>
    </ElasticityRule>
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional

from .expressions import Expression, ExpressionError, parse_expression

__all__ = ["VEEMOperation", "ElasticityAction", "Trigger", "ElasticityRule",
           "parse_action"]


class VEEMOperation(enum.Enum):
    """The VEEM operation set elasticity actions may request (§4.2.1)."""

    DEPLOY_VM = "deployVM"
    UNDEPLOY_VM = "undeployVM"
    MIGRATE_VM = "migrateVM"
    RECONFIGURE_VM = "reconfigureVM"
    NOTIFY = "notify"  # out-of-band alert to the provider, no VEEM call


_ACTION_RE = re.compile(r"^\s*(\w+)\s*\(\s*([^()]*?)\s*\)\s*$")


@dataclass(frozen=True)
class ElasticityAction:
    """One requested operation: which VEEM call, on which component ref.

    ``component_ref`` follows the paper's style of naming the elastic
    component's deployment reference (``uk.ucl.condor.exec.ref``); the
    Service Manager resolves it to a virtual-system id at install time.
    """

    operation: VEEMOperation
    component_ref: str = ""
    arguments: tuple[str, ...] = ()

    def unparse(self) -> str:
        args = ", ".join((self.component_ref, *self.arguments)) \
            if self.component_ref else ", ".join(self.arguments)
        return f"{self.operation.value}({args})"


def parse_action(text: str) -> ElasticityAction:
    """Parse an ``<Action run="..."/>`` attribute value."""
    match = _ACTION_RE.match(text)
    if match is None:
        raise ExpressionError(f"malformed action {text!r}")
    op_name, arg_text = match.groups()
    try:
        operation = VEEMOperation(op_name)
    except ValueError:
        valid = ", ".join(op.value for op in VEEMOperation)
        raise ExpressionError(
            f"unknown operation {op_name!r} (expected one of: {valid})"
        ) from None
    args = tuple(a.strip() for a in arg_text.split(",") if a.strip())
    component_ref = args[0] if args else ""
    return ElasticityAction(operation, component_ref, args[1:])


@dataclass(frozen=True)
class Trigger:
    """Condition plus the time frame within which actions must follow.

    ``time_constraint_ms`` is the §6.1.2 ``<TimeConstraint unit="ms">``: the
    Service Manager must evaluate the rule and invoke the actions within this
    window of the enabling monitoring event; the generated validation
    instruments check it against infrastructure logs.
    """

    expression: Expression
    time_constraint_ms: float = 5000.0

    def __post_init__(self) -> None:
        if self.time_constraint_ms <= 0:
            raise ValueError("time constraint must be positive")

    @property
    def time_constraint_s(self) -> float:
        return self.time_constraint_ms / 1000.0


@dataclass(frozen=True)
class ElasticityRule:
    """A named ECA rule: when the trigger holds, request the actions."""

    name: str
    trigger: Trigger
    actions: tuple[ElasticityAction, ...]
    #: minimum spacing between two firings of this rule; defaults to the
    #: trigger's time constraint so a persistent condition fires once per
    #: evaluation window rather than once per monitoring event.
    cooldown_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule name must be non-empty")
        if not self.actions:
            raise ValueError(f"rule {self.name}: at least one action required")

    @property
    def effective_cooldown_s(self) -> float:
        if self.cooldown_s is not None:
            return self.cooldown_s
        return self.trigger.time_constraint_s

    def kpi_references(self) -> frozenset[str]:
        """KPI qualified names the trigger reads.

        Computed once per rule (the AST never changes after construction)
        and shared by manifest validation, the generated instruments and
        the rule engine's KPI→rules index.
        """
        try:
            return self._kpi_refs
        except AttributeError:
            refs = frozenset(self.trigger.expression.kpi_references())
            object.__setattr__(self, "_kpi_refs", refs)
            return refs

    @classmethod
    def from_text(cls, name: str, expression: str, actions: str | list[str],
                  *, time_constraint_ms: float = 5000.0,
                  defaults: Optional[dict[str, float]] = None,
                  cooldown_s: Optional[float] = None) -> "ElasticityRule":
        """Build a rule from concrete syntax strings."""
        if isinstance(actions, str):
            actions = [actions]
        return cls(
            name=name,
            trigger=Trigger(
                expression=parse_expression(expression, defaults),
                time_constraint_ms=time_constraint_ms,
            ),
            actions=tuple(parse_action(a) for a in actions),
            cooldown_s=cooldown_s,
        )
