"""The Application Description Language (ADL).

§4.2.1 / Fig. 3: "The syntax of the ADL consists of one or more named
components, with a number of associated KPIs. These KPIs are identified using
appropriate qualified names (e.g. com.sap.webdispatcher.kpis.sessions), that
will allow the underlying infrastructure to identify corresponding events
obtained from an application level monitor."

The concrete XML of §6.1.2::

    <ApplicationDescription name="polymorphGridApp">
      <Component name="GridMgmtService" ovf:id="GM">
        <KeyPerformanceIndicator category="Agent" type="int">
          <Frequency unit="s">30</Frequency>
          <QName>uk.ucl.condor.schedd.queuesize</QName>
        </KeyPerformanceIndicator>
      </Component>
      ...
    </ApplicationDescription>
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...monitoring.measurements import AttributeType, validate_qualified_name

__all__ = ["KPICategory", "KeyPerformanceIndicator", "ComponentDescription",
           "ApplicationDescription"]


#: KPI provenance categories: produced by an application agent, by the
#: infrastructure (hypervisor-level), or derived by the service manager.
KPI_CATEGORIES = ("Agent", "Infrastructure", "Derived")
KPICategory = str

#: manifest type attribute → wire type
_TYPE_NAMES = {
    "int": AttributeType.INTEGER,
    "long": AttributeType.LONG,
    "float": AttributeType.FLOAT,
    "double": AttributeType.DOUBLE,
    "bool": AttributeType.BOOLEAN,
    "string": AttributeType.STRING,
}
_TYPE_NAMES_REV = {v: k for k, v in _TYPE_NAMES.items()}


@dataclass(frozen=True)
class KeyPerformanceIndicator:
    """One monitorable application parameter.

    ``default`` feeds the OCL ``qe.default`` fallback used when a rule is
    evaluated before any measurement has arrived.
    """

    qualified_name: str
    type: AttributeType = AttributeType.INTEGER
    frequency_s: float = 30.0
    category: KPICategory = "Agent"
    units: str = ""
    default: Optional[float] = None

    def __post_init__(self) -> None:
        validate_qualified_name(self.qualified_name)
        if self.frequency_s <= 0:
            raise ValueError(
                f"KPI {self.qualified_name}: frequency must be positive"
            )
        if self.category not in KPI_CATEGORIES:
            raise ValueError(
                f"KPI {self.qualified_name}: category must be one of "
                f"{KPI_CATEGORIES}, got {self.category!r}"
            )

    @property
    def type_name(self) -> str:
        return _TYPE_NAMES_REV[self.type]

    @staticmethod
    def type_from_name(name: str) -> AttributeType:
        try:
            return _TYPE_NAMES[name]
        except KeyError:
            raise ValueError(f"unknown KPI type {name!r}") from None


@dataclass(frozen=True)
class ComponentDescription:
    """A named application component bound to a manifest virtual system."""

    name: str
    ovf_id: str
    kpis: tuple[KeyPerformanceIndicator, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")
        if not self.ovf_id:
            raise ValueError(f"component {self.name}: ovf_id must be non-empty")
        names = [k.qualified_name for k in self.kpis]
        if len(set(names)) != len(names):
            raise ValueError(
                f"component {self.name}: duplicate KPI qualified names"
            )

    def kpi(self, qualified_name: str) -> KeyPerformanceIndicator:
        for k in self.kpis:
            if k.qualified_name == qualified_name:
                return k
        raise KeyError(
            f"component {self.name} declares no KPI {qualified_name!r}"
        )


@dataclass(frozen=True)
class ApplicationDescription:
    """The application state model: components and their KPIs."""

    name: str
    components: tuple[ComponentDescription, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application name must be non-empty")
        comp_names = [c.name for c in self.components]
        if len(set(comp_names)) != len(comp_names):
            raise ValueError("duplicate component names")
        qnames = [k.qualified_name for c in self.components for k in c.kpis]
        if len(set(qnames)) != len(qnames):
            raise ValueError(
                "KPI qualified names must be global within the service scope"
            )

    def component(self, name: str) -> ComponentDescription:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(f"no component {name!r}")

    def all_kpis(self) -> list[KeyPerformanceIndicator]:
        return [k for c in self.components for k in c.kpis]

    def kpi(self, qualified_name: str) -> KeyPerformanceIndicator:
        for k in self.all_kpis():
            if k.qualified_name == qualified_name:
                return k
        raise KeyError(f"no KPI {qualified_name!r} declared")

    def kpi_defaults(self) -> dict[str, float]:
        """qualified name → declared default (only where one exists)."""
        return {
            k.qualified_name: k.default
            for k in self.all_kpis() if k.default is not None
        }

    def declared_names(self) -> set[str]:
        return {k.qualified_name for k in self.all_kpis()}
