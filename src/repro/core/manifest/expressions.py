"""The elasticity-condition expression language.

§4.2.1: "The conditions are expressed using a collection of nested
expressions and may involve numerical values, arithmetic and boolean
operations, and values of monitoring elements obtained."

Concrete syntax (as printed in the paper's §6.1.2 manifest)::

    (@uk.ucl.condor.schedd.queuesize /
     (@uk.ucl.condor.exec.instances.size + 1) > 4) &&
    (@uk.ucl.condor.exec.instances.size < 16)

``@name.with.dots`` references the latest monitoring value for a KPI
qualified name. Evaluation follows the OCL semantics of §4.2.2 exactly:

* ``evaluate(ElementSimpleType)`` — a literal evaluates to its value;
* ``evaluate(QualifiedElement)`` — the *latest* monitoring record with a
  matching qualified name, else the KPI's declared default;
* ``evaluate(Expression)`` — recursive; comparison operators yield
  ``1``/``0`` ("if ... then result = 1 else result = 0"), and a rule fires
  when the top-level result is ``> 0``.

Grammar (precedence low → high)::

    or_expr    := and_expr ( '||' and_expr )*
    and_expr   := not_expr ( '&&' not_expr )*
    not_expr   := '!' not_expr | comparison
    comparison := additive ( ('>'|'<'|'>='|'<='|'=='|'!=') additive )?
    additive   := term ( ('+'|'-') term )*
    term       := factor ( ('*'|'/') factor )*
    factor     := NUMBER | KPIREF | WINDOW | '(' or_expr ')'
                | '-' factor | '!' factor
    WINDOW     := ('mean'|'min'|'max'|'count') '(' KPIREF ',' NUMBER ')'

Window operations are the time-series extension §4.2.1 announces ("we are
currently working on the ability to specify a time series and operations
related to that time series (mean, minimum, maximum, etc.)"): they
aggregate a KPI's measurements over the trailing window of the given number
of seconds. Evaluating them requires window-capable bindings (see
:class:`EvaluationContext`); plain latest-value bindings raise.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ...monitoring.measurements import validate_qualified_name

__all__ = [
    "ExpressionError",
    "Expression",
    "Literal",
    "KPIRef",
    "UnaryOp",
    "BinaryOp",
    "Comparison",
    "BooleanOp",
    "WindowOp",
    "parse_expression",
    "Bindings",
    "EvaluationContext",
]


class ExpressionError(Exception):
    """Lexing, parsing or evaluation failure."""


#: Resolver from KPI qualified name → current value (or None if unknown).
Bindings = Callable[[str], Optional[float]]


class EvaluationContext:
    """Window-capable bindings for expressions with time-series operations.

    Wraps a latest-value resolver plus a window aggregator. The aggregator
    receives (qualified name, window seconds, operation) and returns the
    aggregate over measurements in the trailing window, or ``None`` when the
    window is empty.
    """

    def __init__(self, latest: Bindings,
                 window: Optional[
                     Callable[[str, float, str], Optional[float]]] = None):
        self.latest = latest
        self.window = window

    def __call__(self, name: str) -> Optional[float]:
        return self.latest(name)

    def aggregate(self, name: str, window_s: float,
                  op: str) -> Optional[float]:
        if self.window is None:
            raise ExpressionError(
                f"{op}(@{name}, {window_s:g}) needs window-capable bindings"
            )
        return self.window(name, window_s, op)


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class Expression(abc.ABC):
    """Base class for condition-expression AST nodes."""

    @abc.abstractmethod
    def evaluate(self, bindings: Bindings) -> float:
        """Numeric result; booleans are 1.0 / 0.0 per the OCL semantics."""

    @abc.abstractmethod
    def kpi_references(self) -> set[str]:
        """Every qualified name the expression reads."""

    @abc.abstractmethod
    def unparse(self) -> str:
        """Concrete-syntax text that re-parses to an equivalent AST."""

    def holds(self, bindings: Bindings) -> bool:
        """Rule-firing predicate: ``evaluate(...) > 0`` (§4.2.2)."""
        return self.evaluate(bindings) > 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.unparse()!r}>"


@dataclass(frozen=True)
class Literal(Expression):
    value: float

    def evaluate(self, bindings: Bindings) -> float:
        return float(self.value)

    def kpi_references(self) -> set[str]:
        return set()

    def unparse(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(float(self.value))


@dataclass(frozen=True)
class KPIRef(Expression):
    """``@qualified.name`` — latest monitoring value, with optional default.

    The default mirrors OCL's ``else result = qe.default``; rule authors set
    it via the KPI declaration. Evaluating an unbound reference without a
    default is an error — silently assuming 0 could fire a scale-down rule
    before the first measurement ever arrives.
    """

    name: str
    default: Optional[float] = None

    def __post_init__(self) -> None:
        validate_qualified_name(self.name)

    def evaluate(self, bindings: Bindings) -> float:
        value = bindings(self.name)
        if value is None:
            if self.default is None:
                raise ExpressionError(
                    f"no monitoring record for {self.name!r} and no default"
                )
            return float(self.default)
        return float(value)

    def kpi_references(self) -> set[str]:
        return {self.name}

    def unparse(self) -> str:
        return f"@{self.name}"




_WINDOW_OPS = ("mean", "min", "max", "count")


@dataclass(frozen=True)
class WindowOp(Expression):
    """``mean(@kpi, seconds)`` etc. — trailing-window KPI aggregation.

    ``count`` yields the number of measurements in the window (0 for an
    empty window); the value aggregates fall back to the KPI default (or
    raise without one), mirroring :class:`KPIRef` semantics.
    """

    op: str
    name: str
    window_s: float
    default: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in _WINDOW_OPS:
            raise ExpressionError(f"unknown window operation {self.op!r}")
        validate_qualified_name(self.name)
        if self.window_s <= 0:
            raise ExpressionError("window must be positive")

    def evaluate(self, bindings: Bindings) -> float:
        if isinstance(bindings, EvaluationContext):
            value = bindings.aggregate(self.name, self.window_s, self.op)
        else:
            raise ExpressionError(
                f"{self.unparse()} requires an EvaluationContext, got plain "
                f"latest-value bindings"
            )
        if value is None:
            if self.op == "count":
                return 0.0
            if self.default is None:
                raise ExpressionError(
                    f"empty window for {self.unparse()} and no default"
                )
            return float(self.default)
        return float(value)

    def kpi_references(self) -> set[str]:
        return {self.name}

    def unparse(self) -> str:
        if float(self.window_s).is_integer():
            w = str(int(self.window_s))
        else:
            w = repr(float(self.window_s))
        return f"{self.op}(@{self.name}, {w})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # '-' or '!'
    operand: Expression

    def __post_init__(self) -> None:
        if self.op not in ("-", "!"):
            raise ExpressionError(f"unknown unary operator {self.op!r}")

    def evaluate(self, bindings: Bindings) -> float:
        value = self.operand.evaluate(bindings)
        if self.op == "-":
            return -value
        return 0.0 if value > 0 else 1.0

    def kpi_references(self) -> set[str]:
        return self.operand.kpi_references()

    def unparse(self) -> str:
        return f"{self.op}({self.operand.unparse()})"


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # + - * /
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, bindings: Bindings) -> float:
        a = self.left.evaluate(bindings)
        b = self.right.evaluate(bindings)
        if self.op == "/":
            if b == 0:
                raise ExpressionError(
                    f"division by zero in {self.unparse()!r}"
                )
            return a / b
        return _ARITH[self.op](a, b)

    def kpi_references(self) -> set[str]:
        return self.left.kpi_references() | self.right.kpi_references()

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


_COMPARE = {
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARE:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, bindings: Bindings) -> float:
        a = self.left.evaluate(bindings)
        b = self.right.evaluate(bindings)
        return 1.0 if _COMPARE[self.op](a, b) else 0.0

    def kpi_references(self) -> set[str]:
        return self.left.kpi_references() | self.right.kpi_references()

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    op: str  # '&&' or '||'
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("&&", "||"):
            raise ExpressionError(f"unknown boolean operator {self.op!r}")

    def evaluate(self, bindings: Bindings) -> float:
        a = self.left.evaluate(bindings) > 0
        # No short-circuit: both sides' KPI lookups must be resolvable, which
        # surfaces missing-default configuration errors deterministically
        # rather than only when the left side happens to be false.
        b = self.right.evaluate(bindings) > 0
        result = (a and b) if self.op == "&&" else (a or b)
        return 1.0 if result else 0.0

    def kpi_references(self) -> set[str]:
        return self.left.kpi_references() | self.right.kpi_references()

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Token:
    kind: str   # NUMBER, KPIREF, OP, LPAREN, RPAREN, END
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<KPIREF>@[A-Za-z0-9_\-]+(\.[A-Za-z0-9_\-]+)+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP>&&|\|\||>=|<=|==|!=|[-+*/><!])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExpressionError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        kind = match.lastgroup
        if kind != "WS":
            yield _Token(kind, match.group(), pos)
        pos = match.end()
    yield _Token("END", "", pos)


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, text: str,
                 defaults: Optional[dict[str, float]] = None):
        self.text = text
        self.tokens = list(_tokenize(text))
        self.index = 0
        self.defaults = defaults or {}

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            raise ExpressionError(
                f"expected {text or kind} at position {token.pos}, "
                f"got {token.text!r}"
            )
        return self.advance()

    def parse(self) -> Expression:
        expr = self.or_expr()
        if self.current.kind != "END":
            raise ExpressionError(
                f"trailing input at position {self.current.pos}: "
                f"{self.current.text!r}"
            )
        return expr

    def or_expr(self) -> Expression:
        left = self.and_expr()
        while self.current.kind == "OP" and self.current.text == "||":
            self.advance()
            left = BooleanOp("||", left, self.and_expr())
        return left

    def and_expr(self) -> Expression:
        left = self.not_expr()
        while self.current.kind == "OP" and self.current.text == "&&":
            self.advance()
            left = BooleanOp("&&", left, self.not_expr())
        return left

    def not_expr(self) -> Expression:
        # '!' is handled at factor level (tight binding, as in C) so that
        # '!(x) + 1' negates only the parenthesised operand; this rung of
        # the precedence ladder exists for grammar clarity.
        return self.comparison()

    def comparison(self) -> Expression:
        left = self.additive()
        if self.current.kind == "OP" and self.current.text in _COMPARE:
            op = self.advance().text
            return Comparison(op, left, self.additive())
        return left

    def additive(self) -> Expression:
        left = self.term()
        while self.current.kind == "OP" and self.current.text in ("+", "-"):
            op = self.advance().text
            left = BinaryOp(op, left, self.term())
        return left

    def term(self) -> Expression:
        left = self.factor()
        while self.current.kind == "OP" and self.current.text in ("*", "/"):
            op = self.advance().text
            left = BinaryOp(op, left, self.factor())
        return left

    def factor(self) -> Expression:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return Literal(float(token.text))
        if token.kind == "KPIREF":
            self.advance()
            name = token.text[1:]  # strip '@'
            return KPIRef(name, default=self.defaults.get(name))
        if token.kind == "IDENT":
            if token.text not in _WINDOW_OPS:
                raise ExpressionError(
                    f"unknown function {token.text!r} at position {token.pos}"
                )
            self.advance()
            self.expect("LPAREN")
            ref = self.expect("KPIREF")
            name = ref.text[1:]
            self.expect("COMMA")
            number = self.expect("NUMBER")
            self.expect("RPAREN")
            return WindowOp(token.text, name, float(number.text),
                            default=self.defaults.get(name))
        if token.kind == "LPAREN":
            self.advance()
            expr = self.or_expr()
            self.expect("RPAREN")
            return expr
        if token.kind == "OP" and token.text == "-":
            self.advance()
            return UnaryOp("-", self.factor())
        if token.kind == "OP" and token.text == "!":
            # Programmatic ASTs may nest '!' inside arithmetic; accept it
            # anywhere a factor is legal so unparse() output always reparses.
            self.advance()
            return UnaryOp("!", self.factor())
        raise ExpressionError(
            f"unexpected token {token.text!r} at position {token.pos}"
        )


def parse_expression(text: str,
                     defaults: Optional[dict[str, float]] = None
                     ) -> Expression:
    """Parse concrete condition syntax into an AST.

    ``defaults`` maps KPI qualified names to the fallback values their
    declarations carry; references pick them up at parse time.
    """
    if not text or not text.strip():
        raise ExpressionError("empty expression")
    return _Parser(text, defaults).parse()
