"""The elasticity-condition expression language.

§4.2.1: "The conditions are expressed using a collection of nested
expressions and may involve numerical values, arithmetic and boolean
operations, and values of monitoring elements obtained."

Concrete syntax (as printed in the paper's §6.1.2 manifest)::

    (@uk.ucl.condor.schedd.queuesize /
     (@uk.ucl.condor.exec.instances.size + 1) > 4) &&
    (@uk.ucl.condor.exec.instances.size < 16)

``@name.with.dots`` references the latest monitoring value for a KPI
qualified name. Evaluation follows the OCL semantics of §4.2.2 exactly:

* ``evaluate(ElementSimpleType)`` — a literal evaluates to its value;
* ``evaluate(QualifiedElement)`` — the *latest* monitoring record with a
  matching qualified name, else the KPI's declared default;
* ``evaluate(Expression)`` — recursive; comparison operators yield
  ``1``/``0`` ("if ... then result = 1 else result = 0"), and a rule fires
  when the top-level result is ``> 0``.

Grammar (precedence low → high)::

    or_expr    := and_expr ( '||' and_expr )*
    and_expr   := not_expr ( '&&' not_expr )*
    not_expr   := '!' not_expr | comparison
    comparison := additive ( ('>'|'<'|'>='|'<='|'=='|'!=') additive )?
    additive   := term ( ('+'|'-') term )*
    term       := factor ( ('*'|'/') factor )*
    factor     := NUMBER | KPIREF | WINDOW | '(' or_expr ')'
                | '-' factor | '!' factor
    WINDOW     := ('mean'|'min'|'max'|'count') '(' KPIREF ',' NUMBER ')'

Window operations are the time-series extension §4.2.1 announces ("we are
currently working on the ability to specify a time series and operations
related to that time series (mean, minimum, maximum, etc.)"): they
aggregate a KPI's measurements over the trailing window of the given number
of seconds. Evaluating them requires window-capable bindings (see
:class:`EvaluationContext`); plain latest-value bindings raise.

Evaluation paths
----------------

Every node supports two semantically identical evaluation paths:

* :meth:`Expression.interpret` — the reference tree-walk, one virtual
  dispatch per node, transcribing the §4.2.2 OCL contract directly;
* :meth:`Expression.compile` — lowers the tree *once* into a single flat
  Python closure by emitting the condition as Python source and evaluating
  it: constant subtrees are folded at compile time, arithmetic and
  comparisons become native operators, and ``&&``/``||`` short-circuit when
  the skipped operand is statically *total* (provably unable to raise), so
  skipping it cannot hide a configuration error.

:meth:`Expression.evaluate` — the public hot path — calls the cached
compiled closure, so repeated rule evaluation pays one function call
instead of a full tree of virtual dispatches.
"""

from __future__ import annotations

import abc
import math
import operator
import re
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ...monitoring.measurements import validate_qualified_name

__all__ = [
    "ExpressionError",
    "Expression",
    "CompiledExpression",
    "Literal",
    "KPIRef",
    "UnaryOp",
    "BinaryOp",
    "Comparison",
    "BooleanOp",
    "WindowOp",
    "parse_expression",
    "Bindings",
    "EvaluationContext",
]


class ExpressionError(Exception):
    """Lexing, parsing or evaluation failure."""


#: Resolver from KPI qualified name → current value (or None if unknown).
Bindings = Callable[[str], Optional[float]]

#: A compiled condition: one flat closure from bindings → numeric result.
CompiledExpression = Callable[[Bindings], float]


class EvaluationContext:
    """Window-capable bindings for expressions with time-series operations.

    Wraps a latest-value resolver plus a window aggregator. The aggregator
    receives (qualified name, window seconds, operation) and returns the
    aggregate over measurements in the trailing window, or ``None`` when the
    window is empty.
    """

    __slots__ = ("latest", "window")

    def __init__(self, latest: Bindings,
                 window: Optional[
                     Callable[[str, float, str], Optional[float]]] = None):
        self.latest = latest
        self.window = window

    def __call__(self, name: str) -> Optional[float]:
        return self.latest(name)

    def aggregate(self, name: str, window_s: float,
                  op: str) -> Optional[float]:
        if self.window is None:
            raise ExpressionError(
                f"{op}(@{name}, {window_s:g}) needs window-capable bindings"
            )
        return self.window(name, window_s, op)


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

def _never(name: str) -> Optional[float]:
    raise AssertionError("constant subtree consulted bindings")


# -- codegen runtime helpers (bound into the compiled lambda's globals) ------

def _ref_helper(bindings: Bindings, name: str) -> float:
    try:
        value = bindings(name)
    except (TypeError, KeyError) as exc:
        raise ExpressionError(
            f"KPI lookup for {name!r} failed: {exc}"
        ) from exc
    if value is None:
        raise ExpressionError(
            f"no monitoring record for {name!r} and no default"
        )
    return float(value)


def _refd_helper(bindings: Bindings, name: str, default: float) -> float:
    try:
        value = bindings(name)
    except (TypeError, KeyError) as exc:
        raise ExpressionError(
            f"KPI lookup for {name!r} failed: {exc}"
        ) from exc
    if value is None:
        return default
    return float(value)


def _div_helper(a: float, b: float, message: str) -> float:
    if b == 0:
        raise ExpressionError(message)
    return a / b


def _win_helper(bindings: Bindings, op: str, name: str, window_s: float,
                default: Optional[float], text: str) -> float:
    if isinstance(bindings, EvaluationContext):
        value = bindings.aggregate(name, window_s, op)
    else:
        raise ExpressionError(
            f"{text} requires an EvaluationContext, got plain "
            f"latest-value bindings"
        )
    if value is None:
        if op == "count":
            return 0.0
        if default is None:
            raise ExpressionError(f"empty window for {text} and no default")
        return default
    return float(value)


#: Globals for compiled closures. The emitted source contains only float
#: literals, validated qualified names and these helpers — no builtins.
_COMPILE_ENV = {
    "__builtins__": {},
    "_ref": _ref_helper,
    "_refd": _refd_helper,
    "_div": _div_helper,
    "_win": _win_helper,
    "float": float,
}


def _lit(value: float) -> str:
    """A Python source literal reproducing ``value`` exactly."""
    if math.isfinite(value):
        return repr(float(value))
    return f"float({str(float(value))!r})"


def _fold(expr: "Expression") -> Optional[CompiledExpression]:
    """Constant-fold a subtree that reads no KPIs.

    Such a subtree evaluates to the same result on every call, so it is
    evaluated once at compile time. A constant *error* (e.g. a literal
    division by zero) compiles to a closure re-raising it, matching the
    interpreted path raising on every evaluation.
    """
    if expr.kpi_references():
        return None
    try:
        value = expr.interpret(_never)
    except ExpressionError as exc:
        def raise_(bindings: Bindings, _exc=exc) -> float:
            raise _exc
        raise_.compiled_source = f"<constant error: {exc}>"
        return raise_
    fn = lambda bindings, _v=value: _v  # noqa: E731
    fn.compiled_source = f"lambda b: {_lit(value)}"
    return fn


def _const_value(expr: "Expression") -> Optional[float]:
    """The subtree's compile-time constant value, or None if it reads KPIs
    or raises (operand specialisation then falls back to emitted code)."""
    if expr.kpi_references():
        return None
    try:
        return expr.interpret(_never)
    except ExpressionError:
        return None


def _emit_folded(expr: "Expression") -> str:
    """Emit a subtree, folding it to a literal when it is an error-free
    constant (a constant that *raises* is emitted as code so it raises
    identically at every evaluation)."""
    value = _const_value(expr)
    if value is not None:
        return _lit(value)
    return expr._emit()


def _emit_folded_bool(expr: "Expression") -> str:
    """Like :func:`_emit_folded` but in boolean context (truth of the
    subtree), sparing the 1.0/0.0 boxing between nested boolean operators."""
    value = _const_value(expr)
    if value is not None:
        return "True" if value > 0 else "False"
    return expr._emit_bool()


class Expression(abc.ABC):
    """Base class for condition-expression AST nodes."""

    @abc.abstractmethod
    def interpret(self, bindings: Bindings) -> float:
        """Reference tree-walk evaluation; booleans are 1.0 / 0.0 per the
        OCL semantics. Semantically identical to the compiled path."""

    @abc.abstractmethod
    def kpi_references(self) -> set[str]:
        """Every qualified name the expression reads."""

    @abc.abstractmethod
    def unparse(self) -> str:
        """Concrete-syntax text that re-parses to an equivalent AST."""

    @abc.abstractmethod
    def _emit(self) -> str:
        """Python source for this node's value, as a self-contained
        parenthesised expression over the bindings parameter ``b`` and the
        :data:`_COMPILE_ENV` helpers. Operand evaluation order matches
        :meth:`interpret` exactly."""

    def _emit_bool(self) -> str:
        """Python source for this node's truth value (``> 0`` per §4.2.2).
        Boolean operators override this to chain natively instead of boxing
        intermediate results to 1.0/0.0."""
        return f"({self._emit()} > 0.0)"

    @abc.abstractmethod
    def _total(self) -> bool:
        """True when evaluation can never raise under well-behaved bindings
        (a callable that returns rather than throws): all KPI references
        carry defaults, divisions have non-zero constant divisors, and no
        window operations are involved. Only total operands may be skipped
        by short-circuit without hiding a configuration error."""

    def compile(self) -> CompiledExpression:
        """Lower the tree to a single flat closure; cached per node.

        The closure is built by emitting the condition as one Python
        expression (KPI lookups through tiny helpers, everything else as
        native operators) and evaluating it in a helpers-only namespace, so
        a call executes zero virtual dispatches.
        """
        try:
            return self._compiled
        except AttributeError:
            pass
        fn = _fold(self)
        if fn is None:
            source = "lambda b: " + self._emit()
            fn = eval(source, _COMPILE_ENV)  # noqa: S307 - see _COMPILE_ENV
            fn.compiled_source = source
        object.__setattr__(self, "_compiled", fn)
        return fn

    def evaluate(self, bindings: Bindings) -> float:
        """Numeric result via the cached compiled closure (the hot path)."""
        try:
            fn = self._compiled
        except AttributeError:
            fn = self.compile()
        return fn(bindings)

    def holds(self, bindings: Bindings) -> bool:
        """Rule-firing predicate: ``evaluate(...) > 0`` (§4.2.2)."""
        return self.evaluate(bindings) > 0

    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal of the subtree (self included)."""
        yield self

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.unparse()!r}>"


@dataclass(frozen=True)
class Literal(Expression):
    value: float

    def interpret(self, bindings: Bindings) -> float:
        return float(self.value)

    def kpi_references(self) -> set[str]:
        return set()

    def _emit(self) -> str:
        return _lit(float(self.value))

    def _total(self) -> bool:
        return True

    def unparse(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(float(self.value))


@dataclass(frozen=True)
class KPIRef(Expression):
    """``@qualified.name`` — latest monitoring value, with optional default.

    The default mirrors OCL's ``else result = qe.default``; rule authors set
    it via the KPI declaration. Evaluating an unbound reference without a
    default is an error — silently assuming 0 could fire a scale-down rule
    before the first measurement ever arrives.

    A bindings callable that itself throws ``TypeError``/``KeyError`` (an
    engine wiring bug, not a rule bug) surfaces as an :class:`ExpressionError`
    naming the qualified KPI, never as a bare builtin exception.
    """

    name: str
    default: Optional[float] = None

    def __post_init__(self) -> None:
        validate_qualified_name(self.name)

    def interpret(self, bindings: Bindings) -> float:
        try:
            value = bindings(self.name)
        except (TypeError, KeyError) as exc:
            raise ExpressionError(
                f"KPI lookup for {self.name!r} failed: {exc}"
            ) from exc
        if value is None:
            if self.default is None:
                raise ExpressionError(
                    f"no monitoring record for {self.name!r} and no default"
                )
            return float(self.default)
        return float(value)

    def kpi_references(self) -> set[str]:
        return {self.name}

    def _emit(self) -> str:
        if self.default is None:
            return f"_ref(b, {self.name!r})"
        return f"_refd(b, {self.name!r}, {_lit(float(self.default))})"

    def _total(self) -> bool:
        return self.default is not None

    def unparse(self) -> str:
        return f"@{self.name}"


_WINDOW_OPS = ("mean", "min", "max", "count")


@dataclass(frozen=True)
class WindowOp(Expression):
    """``mean(@kpi, seconds)`` etc. — trailing-window KPI aggregation.

    ``count`` yields the number of measurements in the window (0 for an
    empty window); the value aggregates fall back to the KPI default (or
    raise without one), mirroring :class:`KPIRef` semantics.
    """

    op: str
    name: str
    window_s: float
    default: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in _WINDOW_OPS:
            raise ExpressionError(f"unknown window operation {self.op!r}")
        validate_qualified_name(self.name)
        if self.window_s <= 0:
            raise ExpressionError("window must be positive")

    def interpret(self, bindings: Bindings) -> float:
        if isinstance(bindings, EvaluationContext):
            value = bindings.aggregate(self.name, self.window_s, self.op)
        else:
            raise ExpressionError(
                f"{self.unparse()} requires an EvaluationContext, got plain "
                f"latest-value bindings"
            )
        if value is None:
            if self.op == "count":
                return 0.0
            if self.default is None:
                raise ExpressionError(
                    f"empty window for {self.unparse()} and no default"
                )
            return float(self.default)
        return float(value)

    def kpi_references(self) -> set[str]:
        return {self.name}

    def _emit(self) -> str:
        default = ("None" if self.default is None
                   else _lit(float(self.default)))
        return (f"_win(b, {self.op!r}, {self.name!r}, "
                f"{_lit(float(self.window_s))}, {default}, "
                f"{self.unparse()!r})")

    def _total(self) -> bool:
        return False

    def unparse(self) -> str:
        if float(self.window_s).is_integer():
            w = str(int(self.window_s))
        else:
            w = repr(float(self.window_s))
        return f"{self.op}(@{self.name}, {w})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # '-' or '!'
    operand: Expression

    def __post_init__(self) -> None:
        if self.op not in ("-", "!"):
            raise ExpressionError(f"unknown unary operator {self.op!r}")

    def interpret(self, bindings: Bindings) -> float:
        value = self.operand.interpret(bindings)
        if self.op == "-":
            return -value
        return 0.0 if value > 0 else 1.0

    def kpi_references(self) -> set[str]:
        return self.operand.kpi_references()

    def _emit(self) -> str:
        if self.op == "-":
            return f"(-{_emit_folded(self.operand)})"
        return f"(1.0 if {self._emit_bool()} else 0.0)"

    def _emit_bool(self) -> str:
        if self.op == "-":
            return f"({self._emit()} > 0.0)"
        return f"(not {_emit_folded_bool(self.operand)})"

    def _total(self) -> bool:
        return self.operand._total()

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()

    def unparse(self) -> str:
        return f"{self.op}({self.operand.unparse()})"


_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # + - * /
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def interpret(self, bindings: Bindings) -> float:
        a = self.left.interpret(bindings)
        b = self.right.interpret(bindings)
        if self.op == "/":
            if b == 0:
                raise ExpressionError(
                    f"division by zero in {self.unparse()!r}"
                )
            return a / b
        return _ARITH[self.op](a, b)

    def kpi_references(self) -> set[str]:
        return self.left.kpi_references() | self.right.kpi_references()

    def _emit(self) -> str:
        left = _emit_folded(self.left)
        if self.op == "/":
            rv = _const_value(self.right)
            if rv is not None and rv != 0:
                return f"({left} / {_lit(rv)})"
            message = f"division by zero in {self.unparse()!r}"
            return f"_div({left}, {_emit_folded(self.right)}, {message!r})"
        return f"({left} {self.op} {_emit_folded(self.right)})"

    def _total(self) -> bool:
        if not (self.left._total() and self.right._total()):
            return False
        if self.op != "/":
            return True
        rv = _const_value(self.right)
        return rv is not None and rv != 0

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


_COMPARE = {
    ">": operator.gt,
    "<": operator.lt,
    ">=": operator.ge,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class Comparison(Expression):
    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARE:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def interpret(self, bindings: Bindings) -> float:
        a = self.left.interpret(bindings)
        b = self.right.interpret(bindings)
        return 1.0 if _COMPARE[self.op](a, b) else 0.0

    def kpi_references(self) -> set[str]:
        return self.left.kpi_references() | self.right.kpi_references()

    def _emit(self) -> str:
        return f"(1.0 if {self._emit_bool()} else 0.0)"

    def _emit_bool(self) -> str:
        left = _emit_folded(self.left)
        right = _emit_folded(self.right)
        return f"({left} {self.op} {right})"

    def _total(self) -> bool:
        return self.left._total() and self.right._total()

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    op: str  # '&&' or '||'
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("&&", "||"):
            raise ExpressionError(f"unknown boolean operator {self.op!r}")

    def interpret(self, bindings: Bindings) -> float:
        a = self.left.interpret(bindings) > 0
        # No short-circuit here: both sides' KPI lookups must be resolvable,
        # which surfaces missing-default configuration errors
        # deterministically rather than only when the left side happens to
        # be false.
        b = self.right.interpret(bindings) > 0
        result = (a and b) if self.op == "&&" else (a or b)
        return 1.0 if result else 0.0

    def kpi_references(self) -> set[str]:
        return self.left.kpi_references() | self.right.kpi_references()

    def _emit(self) -> str:
        return f"(1.0 if {self._emit_bool()} else 0.0)"

    def _emit_bool(self) -> str:
        left = _emit_folded_bool(self.left)
        right = _emit_folded_bool(self.right)
        # Short-circuit (`and`/`or`) only when the skipped operand is total:
        # skipping it then cannot suppress a missing-default or division
        # error, so the compiled path stays observationally identical to
        # interpret(). Otherwise the non-short-circuiting boolean `&`/`|`
        # forces both operands, exactly like the tree-walk.
        word = ("and" if self.op == "&&" else "or") if self.right._total() \
            else ("&" if self.op == "&&" else "|")
        return f"({left} {word} {right})"

    def _total(self) -> bool:
        return self.left._total() and self.right._total()

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Token:
    kind: str   # NUMBER, KPIREF, OP, LPAREN, RPAREN, END
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<KPIREF>@[A-Za-z0-9_\-]+(\.[A-Za-z0-9_\-]+)+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP>&&|\|\||>=|<=|==|!=|[-+*/><!])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExpressionError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        kind = match.lastgroup
        if kind != "WS":
            yield _Token(kind, match.group(), pos)
        pos = match.end()
    yield _Token("END", "", pos)


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, text: str,
                 defaults: Optional[dict[str, float]] = None):
        self.text = text
        self.tokens = list(_tokenize(text))
        self.index = 0
        self.defaults = defaults or {}

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            raise ExpressionError(
                f"expected {text or kind} at position {token.pos}, "
                f"got {token.text!r}"
            )
        return self.advance()

    def parse(self) -> Expression:
        expr = self.or_expr()
        if self.current.kind != "END":
            raise ExpressionError(
                f"trailing input at position {self.current.pos}: "
                f"{self.current.text!r}"
            )
        return expr

    def or_expr(self) -> Expression:
        left = self.and_expr()
        while self.current.kind == "OP" and self.current.text == "||":
            self.advance()
            left = BooleanOp("||", left, self.and_expr())
        return left

    def and_expr(self) -> Expression:
        left = self.not_expr()
        while self.current.kind == "OP" and self.current.text == "&&":
            self.advance()
            left = BooleanOp("&&", left, self.not_expr())
        return left

    def not_expr(self) -> Expression:
        # '!' is handled at factor level (tight binding, as in C) so that
        # '!(x) + 1' negates only the parenthesised operand; this rung of
        # the precedence ladder exists for grammar clarity.
        return self.comparison()

    def comparison(self) -> Expression:
        left = self.additive()
        if self.current.kind == "OP" and self.current.text in _COMPARE:
            op = self.advance().text
            return Comparison(op, left, self.additive())
        return left

    def additive(self) -> Expression:
        left = self.term()
        while self.current.kind == "OP" and self.current.text in ("+", "-"):
            op = self.advance().text
            left = BinaryOp(op, left, self.term())
        return left

    def term(self) -> Expression:
        left = self.factor()
        while self.current.kind == "OP" and self.current.text in ("*", "/"):
            op = self.advance().text
            left = BinaryOp(op, left, self.factor())
        return left

    def factor(self) -> Expression:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return Literal(float(token.text))
        if token.kind == "KPIREF":
            self.advance()
            name = token.text[1:]  # strip '@'
            return KPIRef(name, default=self.defaults.get(name))
        if token.kind == "IDENT":
            if token.text not in _WINDOW_OPS:
                raise ExpressionError(
                    f"unknown function {token.text!r} at position {token.pos}"
                )
            self.advance()
            self.expect("LPAREN")
            ref = self.expect("KPIREF")
            name = ref.text[1:]
            self.expect("COMMA")
            number = self.expect("NUMBER")
            self.expect("RPAREN")
            return WindowOp(token.text, name, float(number.text),
                            default=self.defaults.get(name))
        if token.kind == "LPAREN":
            self.advance()
            expr = self.or_expr()
            self.expect("RPAREN")
            return expr
        if token.kind == "OP" and token.text == "-":
            self.advance()
            return UnaryOp("-", self.factor())
        if token.kind == "OP" and token.text == "!":
            # Programmatic ASTs may nest '!' inside arithmetic; accept it
            # anywhere a factor is legal so unparse() output always reparses.
            self.advance()
            return UnaryOp("!", self.factor())
        raise ExpressionError(
            f"unexpected token {token.text!r} at position {token.pos}"
        )


def parse_expression(text: str,
                     defaults: Optional[dict[str, float]] = None
                     ) -> Expression:
    """Parse concrete condition syntax into an AST.

    ``defaults`` maps KPI qualified names to the fallback values their
    declarations carry; references pick them up at parse time.
    """
    if not text or not text.strip():
        raise ExpressionError("empty expression")
    return _Parser(text, defaults).parse()
