"""Concrete XML syntax for service manifests (OVF envelope + extensions).

§4.2.3: "the model-denotational approach adopted here provides a basis for
automatically deriving concrete human or machine readable representations of
the language". This module is that derivation for XML: serialisation of the
abstract syntax to an OVF-style envelope, and a parser back — the round trip
is property-tested.

The layout follows DSP0243's structure (References, DiskSection,
NetworkSection, VirtualSystem with VirtualHardwareSection / ProductSection,
StartupSection), with the RESERVOIR extension sections
(``ElasticityBounds``, ``PlacementSection``, ``ApplicationDescription``,
``ElasticityRule``) in their own elements, as [13] proposes. Namespaces are
elided for readability — the structure, not the URIs, is what the semantics
bind to.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from .adl import (
    ApplicationDescription,
    ComponentDescription,
    KeyPerformanceIndicator,
)
from .elasticity import ElasticityRule, Trigger, parse_action
from .expressions import parse_expression
from .sla import ServiceLevelObjective, SLASection
from .model import (
    AntiColocationConstraint,
    ColocationConstraint,
    FileReference,
    InstanceBounds,
    LogicalNetwork,
    PlacementPolicySection,
    ServiceManifest,
    SitePlacement,
    StartupEntry,
    VirtualDisk,
    VirtualHardware,
    VirtualSystem,
)

__all__ = ["manifest_to_xml", "manifest_from_xml", "ManifestSyntaxError"]


class ManifestSyntaxError(Exception):
    """Malformed manifest XML."""


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------

def _bool(value: bool) -> str:
    return "true" if value else "false"


def manifest_to_xml(manifest: ServiceManifest) -> str:
    """Serialise to the concrete XML syntax (UTF-8 string)."""
    root = ET.Element("Envelope", {"name": manifest.service_name})

    refs = ET.SubElement(root, "References")
    for f in manifest.references:
        ET.SubElement(refs, "File", {
            "id": f.file_id, "href": f.href, "size": repr(f.size_mb),
        })

    disks = ET.SubElement(root, "DiskSection")
    for d in manifest.disks:
        attrs = {"diskId": d.disk_id, "fileRef": d.file_ref}
        if d.capacity_mb is not None:
            attrs["capacity"] = repr(d.capacity_mb)
        ET.SubElement(disks, "Disk", attrs)

    nets = ET.SubElement(root, "NetworkSection")
    for n in manifest.networks:
        net_el = ET.SubElement(nets, "Network", {
            "name": n.name, "public": _bool(n.public),
        })
        if n.description:
            ET.SubElement(net_el, "Description").text = n.description

    for system in manifest.virtual_systems:
        vs = ET.SubElement(root, "VirtualSystem", {
            "id": system.system_id,
            "replicable": _bool(system.replicable),
        })
        if system.info:
            ET.SubElement(vs, "Info").text = system.info
        hw = ET.SubElement(vs, "VirtualHardwareSection")
        ET.SubElement(hw, "CPU").text = repr(system.hardware.cpu)
        ET.SubElement(hw, "Memory", {"unit": "MB"}).text = \
            repr(system.hardware.memory_mb)
        for ref in system.disk_refs:
            ET.SubElement(vs, "DiskRef", {"diskId": ref})
        for ref in system.network_refs:
            ET.SubElement(vs, "NetworkRef", {"name": ref})
        if system.customisation:
            product = ET.SubElement(vs, "ProductSection")
            for key, value in system.customisation:
                ET.SubElement(product, "Property",
                              {"key": key, "value": value})
        ET.SubElement(vs, "ElasticityBounds", {
            "initial": str(system.instances.initial),
            "min": str(system.instances.minimum),
            "max": str(system.instances.maximum),
        })

    if manifest.startup:
        startup = ET.SubElement(root, "StartupSection")
        for entry in manifest.startup:
            ET.SubElement(startup, "Item", {
                "id": entry.system_id,
                "order": str(entry.order),
                "waitingForGuest": _bool(entry.wait_for_guest),
            })

    placement = manifest.placement
    if (placement.colocations or placement.anti_colocations
            or placement.site_placements or placement.per_host_caps):
        pl = ET.SubElement(root, "PlacementSection")
        for c in placement.colocations:
            ET.SubElement(pl, "Colocation", {
                "id": c.system_id, "with": c.with_system_id,
            })
        for a in placement.anti_colocations:
            ET.SubElement(pl, "AntiColocation", {
                "id": a.system_id, "avoid": a.avoid_system_id,
            })
        for sp in placement.site_placements:
            attrs = {"requireTrusted": _bool(sp.require_trusted)}
            if sp.system_id is not None:
                attrs["id"] = sp.system_id
            sp_el = ET.SubElement(pl, "SitePlacement", attrs)
            for site in sp.favour_sites:
                ET.SubElement(sp_el, "Favour", {"site": site})
            for site in sp.avoid_sites:
                ET.SubElement(sp_el, "Avoid", {"site": site})
        for system_id, cap in placement.per_host_caps:
            ET.SubElement(pl, "PerHostCap", {
                "id": system_id, "cap": str(cap),
            })

    if manifest.application is not None:
        app = ET.SubElement(root, "ApplicationDescription",
                            {"name": manifest.application.name})
        for comp in manifest.application.components:
            comp_el = ET.SubElement(app, "Component", {
                "name": comp.name, "ovf-id": comp.ovf_id,
            })
            for kpi in comp.kpis:
                kpi_el = ET.SubElement(comp_el, "KeyPerformanceIndicator", {
                    "category": kpi.category, "type": kpi.type_name,
                })
                if kpi.units:
                    kpi_el.set("units", kpi.units)
                if kpi.default is not None:
                    kpi_el.set("default", repr(kpi.default))
                freq = ET.SubElement(kpi_el, "Frequency", {"unit": "s"})
                freq.text = repr(kpi.frequency_s)
                ET.SubElement(kpi_el, "QName").text = kpi.qualified_name

    if manifest.sla:
        sla_el = ET.SubElement(root, "SLASection")
        for slo in manifest.sla:
            slo_el = ET.SubElement(sla_el, "SLObjective", {
                "name": slo.name,
                "period": repr(slo.evaluation_period_s),
                "target": repr(slo.target_compliance),
                "window": repr(slo.assessment_window_s),
                "penalty": repr(slo.penalty_per_breach),
            })
            ET.SubElement(slo_el, "Expression").text = slo.expression.unparse()

    for rule in manifest.elasticity_rules:
        rule_el = ET.SubElement(root, "ElasticityRule", {"name": rule.name})
        if rule.cooldown_s is not None:
            rule_el.set("cooldown", repr(rule.cooldown_s))
        trigger = ET.SubElement(rule_el, "Trigger")
        tc = ET.SubElement(trigger, "TimeConstraint", {"unit": "ms"})
        tc.text = repr(rule.trigger.time_constraint_ms)
        expr = ET.SubElement(trigger, "Expression")
        expr.text = rule.trigger.expression.unparse()
        for action in rule.actions:
            ET.SubElement(rule_el, "Action", {"run": action.unparse()})

    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def _req(el: ET.Element, attr: str) -> str:
    value = el.get(attr)
    if value is None:
        # Accept namespaced spellings of the same attribute (the paper's
        # snippets write ovf:id where we serialise ovf-id): ElementTree
        # renders a namespaced attribute as "{uri}local".
        local = attr.split("-")[-1]
        for key, candidate in el.attrib.items():
            if key.endswith("}" + attr) or key.endswith("}" + local):
                return candidate
        raise ManifestSyntaxError(
            f"<{el.tag}> is missing required attribute {attr!r}"
        )
    return value


def _parse_bool(text: str) -> bool:
    if text not in ("true", "false"):
        raise ManifestSyntaxError(f"expected boolean, got {text!r}")
    return text == "true"


def manifest_from_xml(text: str) -> ServiceManifest:
    """Parse the concrete XML syntax back into the abstract syntax."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ManifestSyntaxError(f"not well-formed XML: {exc}") from exc
    if root.tag != "Envelope":
        raise ManifestSyntaxError(f"expected <Envelope>, got <{root.tag}>")

    references = tuple(
        FileReference(_req(f, "id"), _req(f, "href"), float(_req(f, "size")))
        for f in root.findall("./References/File")
    )
    disks = tuple(
        VirtualDisk(
            _req(d, "diskId"), _req(d, "fileRef"),
            float(d.get("capacity")) if d.get("capacity") else None,
        )
        for d in root.findall("./DiskSection/Disk")
    )
    networks = tuple(
        LogicalNetwork(
            _req(n, "name"),
            description=(n.findtext("Description") or ""),
            public=_parse_bool(n.get("public", "false")),
        )
        for n in root.findall("./NetworkSection/Network")
    )

    systems = []
    for vs in root.findall("./VirtualSystem"):
        cpu_text = vs.findtext("./VirtualHardwareSection/CPU")
        mem_text = vs.findtext("./VirtualHardwareSection/Memory")
        if cpu_text is None or mem_text is None:
            raise ManifestSyntaxError(
                f"virtual system {_req(vs, 'id')!r} lacks a complete "
                f"VirtualHardwareSection"
            )
        bounds_el = vs.find("ElasticityBounds")
        bounds = InstanceBounds() if bounds_el is None else InstanceBounds(
            initial=int(_req(bounds_el, "initial")),
            minimum=int(_req(bounds_el, "min")),
            maximum=int(_req(bounds_el, "max")),
        )
        systems.append(VirtualSystem(
            system_id=_req(vs, "id"),
            info=vs.findtext("Info") or "",
            hardware=VirtualHardware(cpu=float(cpu_text),
                                     memory_mb=float(mem_text)),
            disk_refs=tuple(_req(d, "diskId")
                            for d in vs.findall("DiskRef")),
            network_refs=tuple(_req(n, "name")
                               for n in vs.findall("NetworkRef")),
            customisation=tuple(
                (_req(p, "key"), _req(p, "value"))
                for p in vs.findall("./ProductSection/Property")
            ),
            instances=bounds,
            replicable=_parse_bool(vs.get("replicable", "true")),
        ))

    startup = tuple(
        StartupEntry(
            system_id=_req(item, "id"),
            order=int(_req(item, "order")),
            wait_for_guest=_parse_bool(item.get("waitingForGuest", "true")),
        )
        for item in root.findall("./StartupSection/Item")
    )

    pl_el = root.find("PlacementSection")
    if pl_el is None:
        placement = PlacementPolicySection()
    else:
        placement = PlacementPolicySection(
            colocations=tuple(
                ColocationConstraint(_req(c, "id"), _req(c, "with"))
                for c in pl_el.findall("Colocation")
            ),
            anti_colocations=tuple(
                AntiColocationConstraint(_req(a, "id"), _req(a, "avoid"))
                for a in pl_el.findall("AntiColocation")
            ),
            site_placements=tuple(
                SitePlacement(
                    system_id=sp.get("id"),
                    favour_sites=tuple(_req(f, "site")
                                       for f in sp.findall("Favour")),
                    avoid_sites=tuple(_req(a, "site")
                                      for a in sp.findall("Avoid")),
                    require_trusted=_parse_bool(
                        sp.get("requireTrusted", "false")),
                )
                for sp in pl_el.findall("SitePlacement")
            ),
            per_host_caps=tuple(
                (_req(c, "id"), int(_req(c, "cap")))
                for c in pl_el.findall("PerHostCap")
            ),
        )

    app_el = root.find("ApplicationDescription")
    application: Optional[ApplicationDescription] = None
    if app_el is not None:
        components = []
        for comp_el in app_el.findall("Component"):
            kpis = []
            for kpi_el in comp_el.findall("KeyPerformanceIndicator"):
                qname = kpi_el.findtext("QName")
                if qname is None:
                    raise ManifestSyntaxError("KPI without <QName>")
                default_text = kpi_el.get("default")
                kpis.append(KeyPerformanceIndicator(
                    qualified_name=qname.strip(),
                    type=KeyPerformanceIndicator.type_from_name(
                        kpi_el.get("type", "int")),
                    frequency_s=float(kpi_el.findtext("Frequency") or 30.0),
                    category=kpi_el.get("category", "Agent"),
                    units=kpi_el.get("units", ""),
                    default=(float(default_text)
                             if default_text is not None else None),
                ))
            components.append(ComponentDescription(
                name=_req(comp_el, "name"),
                ovf_id=_req(comp_el, "ovf-id"),
                kpis=tuple(kpis),
            ))
        application = ApplicationDescription(
            name=_req(app_el, "name"), components=tuple(components),
        )

    defaults = application.kpi_defaults() if application is not None else {}
    rules = []
    for rule_el in root.findall("ElasticityRule"):
        trigger_el = rule_el.find("Trigger")
        if trigger_el is None:
            raise ManifestSyntaxError(
                f"rule {_req(rule_el, 'name')!r} lacks a <Trigger>"
            )
        expr_text = trigger_el.findtext("Expression")
        if expr_text is None:
            raise ManifestSyntaxError(
                f"rule {_req(rule_el, 'name')!r} lacks an <Expression>"
            )
        tc_text = trigger_el.findtext("TimeConstraint")
        cooldown_text = rule_el.get("cooldown")
        rules.append(ElasticityRule(
            name=_req(rule_el, "name"),
            trigger=Trigger(
                expression=parse_expression(expr_text, defaults),
                time_constraint_ms=float(tc_text) if tc_text else 5000.0,
            ),
            actions=tuple(
                parse_action(_req(a, "run"))
                for a in rule_el.findall("Action")
            ),
            cooldown_s=(float(cooldown_text)
                        if cooldown_text is not None else None),
        ))

    sla_el = root.find("SLASection")
    if sla_el is None:
        sla = SLASection()
    else:
        objectives = []
        for slo_el in sla_el.findall("SLObjective"):
            expr_text = slo_el.findtext("Expression")
            if expr_text is None:
                raise ManifestSyntaxError(
                    f"SLO {_req(slo_el, 'name')!r} lacks an <Expression>"
                )
            objectives.append(ServiceLevelObjective(
                name=_req(slo_el, "name"),
                expression=parse_expression(expr_text, defaults),
                evaluation_period_s=float(slo_el.get("period", 30.0)),
                target_compliance=float(slo_el.get("target", 0.95)),
                assessment_window_s=float(slo_el.get("window", 3600.0)),
                penalty_per_breach=float(slo_el.get("penalty", 1.0)),
            ))
        sla = SLASection(tuple(objectives))

    return ServiceManifest(
        service_name=_req(root, "name"),
        references=references,
        disks=disks,
        networks=networks,
        virtual_systems=tuple(systems),
        startup=startup,
        placement=placement,
        application=application,
        elasticity_rules=tuple(rules),
        sla=sla,
    )
