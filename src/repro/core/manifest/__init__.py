"""The service manifest language: abstract syntax, well-formedness rules and
concrete XML syntax (behavioural semantics live in
:mod:`repro.core.constraints` and are enforced by
:mod:`repro.core.service_manager`)."""

from .adl import (
    ApplicationDescription,
    ComponentDescription,
    KeyPerformanceIndicator,
)
from .builder import ManifestBuilder
from .elasticity import (
    ElasticityAction,
    ElasticityRule,
    Trigger,
    VEEMOperation,
    parse_action,
)
from .expressions import (
    BinaryOp,
    BooleanOp,
    Comparison,
    Expression,
    ExpressionError,
    KPIRef,
    Literal,
    UnaryOp,
    parse_expression,
)
from .model import (
    AntiColocationConstraint,
    ColocationConstraint,
    FileReference,
    InstanceBounds,
    LogicalNetwork,
    PlacementPolicySection,
    ServiceManifest,
    SitePlacement,
    StartupEntry,
    VirtualDisk,
    VirtualHardware,
    VirtualSystem,
)
from .hutn import HutnSyntaxError, manifest_from_text, manifest_to_text
from .ovf_xml import ManifestSyntaxError, manifest_from_xml, manifest_to_xml
from .sla import ServiceLevelObjective, SLASection
from .validation import (
    ManifestValidationError,
    Severity,
    ValidationIssue,
    ensure_valid,
    validate_manifest,
)

__all__ = [
    "ApplicationDescription",
    "ComponentDescription",
    "KeyPerformanceIndicator",
    "ManifestBuilder",
    "ElasticityAction",
    "ElasticityRule",
    "Trigger",
    "VEEMOperation",
    "parse_action",
    "BinaryOp",
    "BooleanOp",
    "Comparison",
    "Expression",
    "ExpressionError",
    "KPIRef",
    "Literal",
    "UnaryOp",
    "parse_expression",
    "AntiColocationConstraint",
    "ColocationConstraint",
    "FileReference",
    "InstanceBounds",
    "LogicalNetwork",
    "PlacementPolicySection",
    "ServiceManifest",
    "SitePlacement",
    "StartupEntry",
    "VirtualDisk",
    "VirtualHardware",
    "VirtualSystem",
    "HutnSyntaxError",
    "manifest_from_text",
    "manifest_to_text",
    "ManifestSyntaxError",
    "manifest_from_xml",
    "manifest_to_xml",
    "ServiceLevelObjective",
    "SLASection",
    "ManifestValidationError",
    "Severity",
    "ValidationIssue",
    "ensure_valid",
    "validate_manifest",
]
