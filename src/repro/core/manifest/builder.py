"""Fluent builder for service manifests.

The UCL-MDA tooling of §4.2.3 lets users "create, edit and validate
manifests" interactively; this builder is the programmatic equivalent — it
assembles the abstract syntax incrementally, fills in the obvious plumbing
(file references and disks derived from image declarations), and validates on
:meth:`ManifestBuilder.build`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .adl import (
    ApplicationDescription,
    ComponentDescription,
    KeyPerformanceIndicator,
)
from .elasticity import ElasticityRule
from .sla import ServiceLevelObjective, SLASection
from .model import (
    AntiColocationConstraint,
    ColocationConstraint,
    FileReference,
    InstanceBounds,
    LogicalNetwork,
    PlacementPolicySection,
    ServiceManifest,
    SitePlacement,
    StartupEntry,
    VirtualDisk,
    VirtualHardware,
    VirtualSystem,
)
from .validation import ensure_valid

__all__ = ["ManifestBuilder"]


class ManifestBuilder:
    """Accumulates manifest parts; ``build()`` validates and freezes them.

    Example
    -------
    >>> builder = ManifestBuilder("sap-erp")
    >>> _ = builder.network("internal")
    >>> _ = builder.component("DBMS", image_mb=8192, cpu=2, memory_mb=4096,
    ...                       networks=["internal"])
    >>> manifest = builder.build()
    >>> manifest.system("DBMS").hardware.cpu
    2
    """

    def __init__(self, service_name: str):
        self.service_name = service_name
        self._references: list[FileReference] = []
        self._disks: list[VirtualDisk] = []
        self._networks: list[LogicalNetwork] = []
        self._systems: list[VirtualSystem] = []
        self._startup: list[StartupEntry] = []
        self._colocations: list[ColocationConstraint] = []
        self._anti_colocations: list[AntiColocationConstraint] = []
        self._site_placements: list[SitePlacement] = []
        self._per_host_caps: list[tuple[str, int]] = []
        self._components: list[ComponentDescription] = []
        self._rules: list[ElasticityRule] = []
        self._slos: list[ServiceLevelObjective] = []
        self._app_name: Optional[str] = None

    # -- infrastructure parts ---------------------------------------------------
    def network(self, name: str, *, description: str = "",
                public: bool = False) -> "ManifestBuilder":
        self._networks.append(LogicalNetwork(name, description, public))
        return self

    def component(self, system_id: str, *, image_mb: float,
                  cpu: float = 1.0, memory_mb: float = 1024.0,
                  networks: Sequence[str] = (),
                  customisation: Optional[dict[str, str]] = None,
                  info: str = "",
                  image_href: Optional[str] = None,
                  initial: int = 1, minimum: Optional[int] = None,
                  maximum: Optional[int] = None,
                  replicable: bool = True,
                  startup_order: Optional[int] = None) -> "ManifestBuilder":
        """Declare one component: image, hardware, networks, elasticity.

        Generates the file reference and disk automatically; elastic bounds
        default to a fixed single instance.
        """
        file_id = f"{system_id}-image"
        disk_id = f"{system_id}-disk"
        self._references.append(FileReference(
            file_id=file_id,
            href=image_href or f"http://sm.internal/images/{system_id}",
            size_mb=image_mb,
        ))
        self._disks.append(VirtualDisk(disk_id=disk_id, file_ref=file_id))
        bounds = InstanceBounds(
            initial=initial,
            minimum=initial if minimum is None else minimum,
            maximum=initial if maximum is None else maximum,
        )
        self._systems.append(VirtualSystem(
            system_id=system_id,
            info=info,
            hardware=VirtualHardware(cpu=cpu, memory_mb=memory_mb),
            disk_refs=(disk_id,),
            network_refs=tuple(networks),
            customisation=tuple((customisation or {}).items()),
            instances=bounds,
            replicable=replicable,
        ))
        if startup_order is not None:
            self._startup.append(StartupEntry(system_id, startup_order))
        return self

    # -- placement constraints ------------------------------------------------------
    def colocate(self, system_id: str, with_system_id: str
                 ) -> "ManifestBuilder":
        self._colocations.append(
            ColocationConstraint(system_id, with_system_id))
        return self

    def anti_colocate(self, system_id: str, avoid_system_id: str
                      ) -> "ManifestBuilder":
        self._anti_colocations.append(
            AntiColocationConstraint(system_id, avoid_system_id))
        return self

    def site_placement(self, system_id: Optional[str] = None, *,
                       favour: Sequence[str] = (),
                       avoid: Sequence[str] = (),
                       require_trusted: bool = False) -> "ManifestBuilder":
        self._site_placements.append(SitePlacement(
            system_id=system_id, favour_sites=tuple(favour),
            avoid_sites=tuple(avoid), require_trusted=require_trusted,
        ))
        return self

    def per_host_cap(self, system_id: str, cap: int) -> "ManifestBuilder":
        self._per_host_caps.append((system_id, cap))
        return self

    # -- application description ----------------------------------------------------
    def application(self, name: str) -> "ManifestBuilder":
        self._app_name = name
        return self

    def kpi(self, component: str, ovf_id: str, qualified_name: str, *,
            frequency_s: float = 30.0, type_name: str = "int",
            category: str = "Agent", units: str = "",
            default: Optional[float] = None) -> "ManifestBuilder":
        """Declare a KPI, creating/extending the ADL component entry."""
        kpi = KeyPerformanceIndicator(
            qualified_name=qualified_name,
            type=KeyPerformanceIndicator.type_from_name(type_name),
            frequency_s=frequency_s, category=category, units=units,
            default=default,
        )
        for i, comp in enumerate(self._components):
            if comp.name == component:
                self._components[i] = ComponentDescription(
                    name=comp.name, ovf_id=comp.ovf_id,
                    kpis=comp.kpis + (kpi,),
                )
                return self
        self._components.append(ComponentDescription(
            name=component, ovf_id=ovf_id, kpis=(kpi,),
        ))
        return self

    # -- elasticity -------------------------------------------------------------
    def rule(self, name: str, expression: str, actions: str | list[str], *,
             time_constraint_ms: float = 5000.0,
             cooldown_s: Optional[float] = None) -> "ManifestBuilder":
        """Add an ECA rule from concrete-syntax strings.

        KPI defaults declared so far are bound into the expression's
        references.
        """
        defaults = {
            k.qualified_name: k.default
            for c in self._components for k in c.kpis
            if k.default is not None
        }
        self._rules.append(ElasticityRule.from_text(
            name, expression, actions,
            time_constraint_ms=time_constraint_ms,
            defaults=defaults, cooldown_s=cooldown_s,
        ))
        return self

    def slo(self, name: str, expression: str, *,
            evaluation_period_s: float = 30.0,
            target_compliance: float = 0.95,
            assessment_window_s: float = 3600.0,
            penalty_per_breach: float = 1.0) -> "ManifestBuilder":
        """Add a service-level objective (§8 future-work syntax)."""
        defaults = {
            k.qualified_name: k.default
            for c in self._components for k in c.kpis
            if k.default is not None
        }
        self._slos.append(ServiceLevelObjective.from_text(
            name, expression,
            evaluation_period_s=evaluation_period_s,
            target_compliance=target_compliance,
            assessment_window_s=assessment_window_s,
            penalty_per_breach=penalty_per_breach,
            defaults=defaults,
        ))
        return self

    # -- assembly ----------------------------------------------------------------
    def build(self, *, validate: bool = True) -> ServiceManifest:
        application = None
        if self._components or self._app_name:
            application = ApplicationDescription(
                name=self._app_name or self.service_name,
                components=tuple(self._components),
            )
        manifest = ServiceManifest(
            service_name=self.service_name,
            references=tuple(self._references),
            disks=tuple(self._disks),
            networks=tuple(self._networks),
            virtual_systems=tuple(self._systems),
            startup=tuple(self._startup),
            placement=PlacementPolicySection(
                colocations=tuple(self._colocations),
                anti_colocations=tuple(self._anti_colocations),
                site_placements=tuple(self._site_placements),
                per_host_caps=tuple(self._per_host_caps),
            ),
            application=application,
            elasticity_rules=tuple(self._rules),
            sla=SLASection(tuple(self._slos)),
        )
        if validate:
            ensure_valid(manifest)
        return manifest
