"""Well-formedness rules for service manifests.

The second facet of the language definition (§4.2: "the abstract syntax, the
well-formedness rules, and the behavioural semantics"). These are static
checks a Service Manager runs at submission time, before any deployment —
dangling references, contradictory constraints, undeclared KPIs.

Severities: ``error`` manifests must be rejected; ``warning`` manifests are
deployable but suspicious (e.g. a declared KPI nothing consumes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .elasticity import VEEMOperation
from .model import ServiceManifest

__all__ = ["Severity", "ValidationIssue", "validate_manifest",
           "ManifestValidationError", "ensure_valid"]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


class ManifestValidationError(Exception):
    """Raised by :func:`ensure_valid` when errors are present."""

    def __init__(self, issues: list[ValidationIssue]):
        self.issues = issues
        super().__init__(
            "; ".join(str(i) for i in issues if i.severity is Severity.ERROR)
        )


def validate_manifest(manifest: ServiceManifest) -> list[ValidationIssue]:
    """Run every well-formedness rule; returns all issues found."""
    issues: list[ValidationIssue] = []

    def error(code: str, message: str) -> None:
        issues.append(ValidationIssue(Severity.ERROR, code, message))

    def warning(code: str, message: str) -> None:
        issues.append(ValidationIssue(Severity.WARNING, code, message))

    file_ids = {f.file_id for f in manifest.references}
    disk_ids = {d.disk_id for d in manifest.disks}
    net_names = {n.name for n in manifest.networks}
    system_ids = set(manifest.system_ids())

    # -- uniqueness ----------------------------------------------------------
    if len(file_ids) != len(manifest.references):
        error("dup-file", "duplicate file reference ids")
    if len(disk_ids) != len(manifest.disks):
        error("dup-disk", "duplicate disk ids")
    if len(net_names) != len(manifest.networks):
        error("dup-network", "duplicate network names")
    if len(system_ids) != len(manifest.virtual_systems):
        error("dup-system", "duplicate virtual system ids")

    # -- reference integrity ----------------------------------------------------
    for disk in manifest.disks:
        if disk.file_ref not in file_ids:
            error("disk-fileref",
                  f"disk {disk.disk_id!r} references unknown file "
                  f"{disk.file_ref!r}")
    for system in manifest.virtual_systems:
        for ref in system.disk_refs:
            if ref not in disk_ids:
                error("system-diskref",
                      f"system {system.system_id!r} references unknown disk "
                      f"{ref!r}")
        if not system.disk_refs:
            error("system-no-disk",
                  f"system {system.system_id!r} has no disk; it cannot boot")
        for ref in system.network_refs:
            if ref not in net_names:
                error("system-netref",
                      f"system {system.system_id!r} references unknown "
                      f"network {ref!r}")

    # -- startup section ----------------------------------------------------------
    seen_startup = set()
    for entry in manifest.startup:
        if entry.system_id not in system_ids:
            error("startup-unknown",
                  f"startup entry references unknown system "
                  f"{entry.system_id!r}")
        if entry.system_id in seen_startup:
            error("startup-dup",
                  f"system {entry.system_id!r} appears twice in the startup "
                  f"section")
        seen_startup.add(entry.system_id)

    # -- placement ---------------------------------------------------------------
    for c in manifest.placement.colocations:
        for sid in (c.system_id, c.with_system_id):
            if sid not in system_ids:
                error("coloc-unknown",
                      f"co-location references unknown system {sid!r}")
    for a in manifest.placement.anti_colocations:
        for sid in (a.system_id, a.avoid_system_id):
            if sid not in system_ids:
                error("anticoloc-unknown",
                      f"anti-co-location references unknown system {sid!r}")
    coloc_pairs = {frozenset((c.system_id, c.with_system_id))
                   for c in manifest.placement.colocations}
    anti_pairs = {frozenset((a.system_id, a.avoid_system_id))
                  for a in manifest.placement.anti_colocations}
    for pair in coloc_pairs & anti_pairs:
        error("coloc-contradiction",
              f"components {sorted(pair)} are constrained to be both "
              f"co-located and anti-co-located")
    for sp in manifest.placement.site_placements:
        if sp.system_id is not None and sp.system_id not in system_ids:
            error("site-unknown",
                  f"site placement references unknown system "
                  f"{sp.system_id!r}")
        overlap = set(sp.favour_sites) & set(sp.avoid_sites)
        if overlap:
            error("site-contradiction",
                  f"sites {sorted(overlap)} are both favoured and avoided")
    for system_id, cap in manifest.placement.per_host_caps:
        if system_id not in system_ids:
            error("cap-unknown",
                  f"per-host cap references unknown system {system_id!r}")
        if cap <= 0:
            error("cap-value", f"per-host cap for {system_id!r} must be > 0")

    # -- application description -----------------------------------------------------
    declared: set[str] = set()
    if manifest.application is not None:
        declared = manifest.application.declared_names()
        for comp in manifest.application.components:
            if comp.ovf_id not in system_ids:
                error("adl-binding",
                      f"ADL component {comp.name!r} is bound to unknown "
                      f"virtual system {comp.ovf_id!r}")

    # -- elasticity rules ---------------------------------------------------------
    rule_names = [r.name for r in manifest.elasticity_rules]
    if len(set(rule_names)) != len(rule_names):
        error("dup-rule", "duplicate elasticity rule names")
    consumed: set[str] = set()
    for rule in manifest.elasticity_rules:
        for qname in rule.kpi_references():
            consumed.add(qname)
            if qname not in declared:
                error("rule-undeclared-kpi",
                      f"rule {rule.name!r} references KPI {qname!r} not "
                      f"declared in the application description")
        for action in rule.actions:
            if action.operation in (VEEMOperation.DEPLOY_VM,
                                    VEEMOperation.UNDEPLOY_VM,
                                    VEEMOperation.MIGRATE_VM,
                                    VEEMOperation.RECONFIGURE_VM):
                target = _ref_to_system(action.component_ref, system_ids)
                if target is None:
                    error("action-target",
                          f"rule {rule.name!r}: action "
                          f"{action.unparse()!r} does not resolve to a "
                          f"virtual system")
                else:
                    system = manifest.system(target)
                    if (action.operation is VEEMOperation.DEPLOY_VM
                            and not system.instances.elastic):
                        error("action-not-elastic",
                              f"rule {rule.name!r} deploys instances of "
                              f"{target!r} but its instance bounds are fixed")
                    if (action.operation is VEEMOperation.DEPLOY_VM
                            and not system.replicable):
                        error("action-not-replicable",
                              f"rule {rule.name!r} would replicate "
                              f"non-replicable component {target!r}")

    # -- SLA section ----------------------------------------------------------
    slo_names = [o.name for o in manifest.sla.objectives]
    if len(set(slo_names)) != len(slo_names):
        error("dup-slo", "duplicate SLO names")
    for slo in manifest.sla.objectives:
        for qname in slo.kpi_references():
            consumed.add(qname)
            if qname not in declared:
                error("slo-undeclared-kpi",
                      f"SLO {slo.name!r} references KPI {qname!r} not "
                      f"declared in the application description")

    for qname in declared - consumed:
        warning("kpi-unused",
                f"KPI {qname!r} is declared but consumed by no rule or SLO")

    # -- elastic systems without rules ------------------------------------------------
    for system in manifest.virtual_systems:
        if system.instances.elastic:
            drives_it = any(
                _ref_to_system(a.component_ref, system_ids) == system.system_id
                for r in manifest.elasticity_rules for a in r.actions
            )
            if not drives_it:
                warning("elastic-undriven",
                        f"system {system.system_id!r} is elastic but no "
                        f"rule adjusts it")

    return issues


def _ref_to_system(component_ref: str, system_ids: set[str]):
    """Resolve an action's component ref to a virtual-system id.

    Accepts either the bare system id or the paper's dotted ``...<id>.ref``
    style where the second-to-last segment names the system (e.g.
    ``uk.ucl.condor.exec.ref`` for system ``exec``).
    """
    if component_ref in system_ids:
        return component_ref
    parts = component_ref.split(".")
    if len(parts) >= 2 and parts[-1] == "ref" and parts[-2] in system_ids:
        return parts[-2]
    return None


def ensure_valid(manifest: ServiceManifest) -> list[ValidationIssue]:
    """Validate; raise on errors, return warnings otherwise."""
    issues = validate_manifest(manifest)
    if any(i.severity is Severity.ERROR for i in issues):
        raise ManifestValidationError(issues)
    return issues
