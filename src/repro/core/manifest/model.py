"""Abstract syntax of the service manifest (OVF core + extensions).

§4.2.1: "The OVF descriptor is an XML-based document composed of three main
parts: description of the files included in the overall service (disks, ISO
images, etc.), meta-data for all virtual machines included, and a description
of the different virtual machine systems. The description is structured into
various 'Sections' ... <DiskSection> describes virtual disks,
<NetworkSection> provides information regarding logical networks,
<VirtualHardwareSection> describes hardware resource requirements of service
components and <StartupSection> defines the virtual machine booting
sequence."

Extensions beyond stock OVF (per §4.1 and [13]): elastic instance bounds on
virtual systems, placement/co-location constraints, the application
description (:mod:`.adl`) and elasticity rules (:mod:`.elasticity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .adl import ApplicationDescription
from .elasticity import ElasticityRule
from .sla import SLASection

__all__ = [
    "FileReference",
    "VirtualDisk",
    "LogicalNetwork",
    "VirtualHardware",
    "InstanceBounds",
    "VirtualSystem",
    "StartupEntry",
    "PlacementPolicySection",
    "ColocationConstraint",
    "AntiColocationConstraint",
    "SitePlacement",
    "ServiceManifest",
]


@dataclass(frozen=True)
class FileReference:
    """``<References><File ovf:id=... ovf:href=... ovf:size=.../>``"""

    file_id: str
    href: str
    size_mb: float

    def __post_init__(self) -> None:
        if not self.file_id or not self.href:
            raise ValueError("file reference needs id and href")
        if self.size_mb <= 0:
            raise ValueError(f"file {self.file_id}: size must be positive")


@dataclass(frozen=True)
class VirtualDisk:
    """``<DiskSection><Disk ovf:diskId=... ovf:fileRef=.../>``"""

    disk_id: str
    file_ref: str
    capacity_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.disk_id or not self.file_ref:
            raise ValueError("disk needs id and fileRef")
        if self.capacity_mb is not None and self.capacity_mb <= 0:
            raise ValueError(f"disk {self.disk_id}: capacity must be positive")


@dataclass(frozen=True)
class LogicalNetwork:
    """``<NetworkSection><Network ovf:name=.../>`` (MDL2)."""

    name: str
    description: str = ""
    #: whether the network provides external (Internet-facing) connectivity
    public: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("network name must be non-empty")


@dataclass(frozen=True)
class VirtualHardware:
    """``<VirtualHardwareSection>``: CPU and memory demands (MDL1)."""

    cpu: float = 1.0
    memory_mb: float = 1024.0

    def __post_init__(self) -> None:
        if self.cpu <= 0 or self.memory_mb <= 0:
            raise ValueError("hardware requirements must be positive")


@dataclass(frozen=True)
class InstanceBounds:
    """Elastic-array bounds for a virtual system ([13]: "elasticity rules
    and bounds"). A fixed component has initial == min == max == 1."""

    initial: int = 1
    minimum: int = 1
    maximum: int = 1

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ValueError("minimum must be non-negative")
        if not (self.minimum <= self.initial <= self.maximum):
            raise ValueError(
                f"need minimum <= initial <= maximum, got "
                f"{self.minimum}/{self.initial}/{self.maximum}"
            )

    @property
    def elastic(self) -> bool:
        return self.maximum > self.minimum


@dataclass(frozen=True)
class VirtualSystem:
    """``<VirtualSystem ovf:id=...>``: one service component (MDL1, MDL6).

    ``customisation`` holds OVF-environment product properties; values may
    contain ``${placeholders}`` resolved at deployment time (e.g.
    ``${ip.internal.CentralInstance}`` — MDL6's instance-specific
    configuration such as dynamically assigned addresses).
    """

    system_id: str
    info: str = ""
    hardware: VirtualHardware = field(default_factory=VirtualHardware)
    disk_refs: tuple[str, ...] = ()
    network_refs: tuple[str, ...] = ()
    customisation: tuple[tuple[str, str], ...] = ()
    instances: InstanceBounds = field(default_factory=InstanceBounds)
    #: whether the component may be replicated at all (the SAP Central
    #: Instance "can not be replicated in any SAP system", §3)
    replicable: bool = True

    def __post_init__(self) -> None:
        if not self.system_id:
            raise ValueError("system_id must be non-empty")
        if not self.replicable and self.instances.maximum > 1:
            raise ValueError(
                f"{self.system_id}: non-replicable component cannot have "
                f"maximum instances {self.instances.maximum} > 1"
            )

    @property
    def primary_disk(self) -> Optional[str]:
        return self.disk_refs[0] if self.disk_refs else None

    def customisation_dict(self) -> dict[str, str]:
        return dict(self.customisation)


@dataclass(frozen=True)
class StartupEntry:
    """``<StartupSection><Item ovf:id=... ovf:order=.../>`` (MDL4).

    Lower order boots earlier; shutdown proceeds in reverse order. Systems
    with equal order start concurrently.
    """

    system_id: str
    order: int
    #: wait for this system to be fully running before starting the next
    #: order tier (OVF ``waitingForGuest`` analogue)
    wait_for_guest: bool = True

    def __post_init__(self) -> None:
        if self.order < 0:
            raise ValueError("startup order must be non-negative")


@dataclass(frozen=True)
class ColocationConstraint:
    """MDL5: two components must share a host (SAP CI with its DBMS)."""

    system_id: str
    with_system_id: str

    def __post_init__(self) -> None:
        if self.system_id == self.with_system_id:
            raise ValueError("co-location with itself is meaningless")


@dataclass(frozen=True)
class AntiColocationConstraint:
    """MDL5: two components must not share a host."""

    system_id: str
    avoid_system_id: str

    def __post_init__(self) -> None:
        if self.system_id == self.avoid_system_id:
            raise ValueError("anti-co-location with itself is contradictory")


@dataclass(frozen=True)
class SitePlacement:
    """MDL5 administrative constraints: favour/avoid sites, trust."""

    system_id: Optional[str] = None    # None = the whole service
    favour_sites: tuple[str, ...] = ()
    avoid_sites: tuple[str, ...] = ()
    require_trusted: bool = False


@dataclass(frozen=True)
class PlacementPolicySection:
    """The manifest's placement section grouping all MDL5 constraints."""

    colocations: tuple[ColocationConstraint, ...] = ()
    anti_colocations: tuple[AntiColocationConstraint, ...] = ()
    site_placements: tuple[SitePlacement, ...] = ()
    #: optional per-host cap entries: (system_id, max instances per host)
    per_host_caps: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class ServiceManifest:
    """The complete Service Definition Manifest.

    "The manifest therefore serves as a contract between service and
    infrastructure providers regarding the correct provisioning of a
    service. It hence reifies key architectural constraints and invariants
    at run-time so that they can be used by the Cloud." (§4.1)
    """

    service_name: str
    references: tuple[FileReference, ...] = ()
    disks: tuple[VirtualDisk, ...] = ()
    networks: tuple[LogicalNetwork, ...] = ()
    virtual_systems: tuple[VirtualSystem, ...] = ()
    startup: tuple[StartupEntry, ...] = ()
    placement: PlacementPolicySection = field(
        default_factory=PlacementPolicySection)
    application: Optional[ApplicationDescription] = None
    elasticity_rules: tuple[ElasticityRule, ...] = ()
    sla: SLASection = field(default_factory=SLASection)

    def __post_init__(self) -> None:
        if not self.service_name:
            raise ValueError("service_name must be non-empty")

    # -- lookups --------------------------------------------------------------
    def file(self, file_id: str) -> FileReference:
        for f in self.references:
            if f.file_id == file_id:
                return f
        raise KeyError(f"no file reference {file_id!r}")

    def disk(self, disk_id: str) -> VirtualDisk:
        for d in self.disks:
            if d.disk_id == disk_id:
                return d
        raise KeyError(f"no disk {disk_id!r}")

    def network(self, name: str) -> LogicalNetwork:
        for n in self.networks:
            if n.name == name:
                return n
        raise KeyError(f"no network {name!r}")

    def system(self, system_id: str) -> VirtualSystem:
        for s in self.virtual_systems:
            if s.system_id == system_id:
                return s
        raise KeyError(f"no virtual system {system_id!r}")

    def system_ids(self) -> list[str]:
        return [s.system_id for s in self.virtual_systems]

    def startup_order(self) -> list[list[str]]:
        """System ids grouped into boot tiers, earliest first; systems not
        listed in the startup section form a final tier."""
        listed = sorted(self.startup, key=lambda e: e.order)
        tiers: dict[int, list[str]] = {}
        for entry in listed:
            tiers.setdefault(entry.order, []).append(entry.system_id)
        result = [tiers[o] for o in sorted(tiers)]
        unlisted = [s.system_id for s in self.virtual_systems
                    if not any(e.system_id == s.system_id for e in listed)]
        if unlisted:
            result.append(unlisted)
        return result

    def image_href(self, system: VirtualSystem) -> str:
        """Resolve a system's primary disk to its image href."""
        if system.primary_disk is None:
            raise KeyError(f"{system.system_id} has no disk")
        disk = self.disk(system.primary_disk)
        return self.file(disk.file_ref).href

    def kpi_defaults(self) -> dict[str, float]:
        if self.application is None:
            return {}
        return self.application.kpi_defaults()
