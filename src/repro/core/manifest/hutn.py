"""Human-readable concrete syntax for service manifests (HUTN-style).

§4.2 lists the concrete languages a RESERVOIR component may use for the same
abstract syntax: "implementation languages (Java, C++, etc.), higher-level
'meta' languages (HUTN, XML, etc.), or even differing standards". The XML
form lives in :mod:`.ovf_xml`; this module provides the human-oriented one,
in the spirit of the OMG Human-Usable Textual Notation: blocks with braces,
one declaration per line.

Example::

    service webshop {
      network internal
      network dmz public "browser-facing"

      file web-image at "http://sm.internal/images/web" size 1024
      disk web-disk from web-image

      system web {
        info "stateless web tier"
        cpu 1
        memory 1024
        disks web-disk
        networks internal dmz
        custom "db_host" = "${ip.internal.db}"
        instances 1..3 initial 1
      }

      startup {
        web order 0
      }

      placement {
        colocate ci with db
        per-host-cap web 4
      }

      application webshop-app {
        component LB on web {
          kpi com.shop.lb.sessions int every 10 units "sessions" default 0
        }
      }

      rule up within 5000 {
        when (@com.shop.lb.sessions / 100 > 1)
        do deployVM(web)
      }

      slo responsive period 30 target 0.95 window 3600 penalty 50 {
        must @com.shop.lb.sessions < 10000
      }
    }

Both directions are provided (:func:`manifest_to_text`,
:func:`manifest_from_text`) and the round trip is property-tested.
"""

from __future__ import annotations

import re
import shlex
from typing import Optional

from .adl import (
    ApplicationDescription,
    ComponentDescription,
    KeyPerformanceIndicator,
)
from .elasticity import ElasticityRule, Trigger, parse_action
from .expressions import parse_expression
from .model import (
    AntiColocationConstraint,
    ColocationConstraint,
    FileReference,
    InstanceBounds,
    LogicalNetwork,
    PlacementPolicySection,
    ServiceManifest,
    SitePlacement,
    StartupEntry,
    VirtualDisk,
    VirtualHardware,
    VirtualSystem,
)
from .sla import ServiceLevelObjective, SLASection

__all__ = ["manifest_to_text", "manifest_from_text", "HutnSyntaxError"]


class HutnSyntaxError(Exception):
    """Malformed textual manifest."""


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _num(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(float(value))


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------

def manifest_to_text(manifest: ServiceManifest) -> str:
    """Render the abstract syntax in the textual notation."""
    out: list[str] = [f"service {manifest.service_name} {{"]

    for n in manifest.networks:
        line = f"  network {n.name}"
        if n.public:
            line += " public"
        if n.description:
            line += f" {_quote(n.description)}"
        out.append(line)

    for f in manifest.references:
        out.append(f"  file {f.file_id} at {_quote(f.href)} "
                   f"size {_num(f.size_mb)}")
    for d in manifest.disks:
        line = f"  disk {d.disk_id} from {d.file_ref}"
        if d.capacity_mb is not None:
            line += f" capacity {_num(d.capacity_mb)}"
        out.append(line)

    for s in manifest.virtual_systems:
        out.append(f"  system {s.system_id} {{")
        if s.info:
            out.append(f"    info {_quote(s.info)}")
        out.append(f"    cpu {_num(s.hardware.cpu)}")
        out.append(f"    memory {_num(s.hardware.memory_mb)}")
        if s.disk_refs:
            out.append("    disks " + " ".join(s.disk_refs))
        if s.network_refs:
            out.append("    networks " + " ".join(s.network_refs))
        for key, value in s.customisation:
            out.append(f"    custom {_quote(key)} = {_quote(value)}")
        bounds = s.instances
        out.append(f"    instances {bounds.minimum}..{bounds.maximum} "
                   f"initial {bounds.initial}")
        if not s.replicable:
            out.append("    not-replicable")
        out.append("  }")

    if manifest.startup:
        out.append("  startup {")
        for entry in manifest.startup:
            line = f"    {entry.system_id} order {entry.order}"
            if not entry.wait_for_guest:
                line += " nowait"
            out.append(line)
        out.append("  }")

    placement = manifest.placement
    if (placement.colocations or placement.anti_colocations
            or placement.site_placements or placement.per_host_caps):
        out.append("  placement {")
        for c in placement.colocations:
            out.append(f"    colocate {c.system_id} with {c.with_system_id}")
        for a in placement.anti_colocations:
            out.append(f"    anti-colocate {a.system_id} avoid "
                       f"{a.avoid_system_id}")
        for sp in placement.site_placements:
            line = "    site " + (sp.system_id or "*")
            for site in sp.favour_sites:
                line += f" favour {site}"
            for site in sp.avoid_sites:
                line += f" avoid {site}"
            if sp.require_trusted:
                line += " trusted"
            out.append(line)
        for system_id, cap in placement.per_host_caps:
            out.append(f"    per-host-cap {system_id} {cap}")
        out.append("  }")

    if manifest.application is not None:
        out.append(f"  application {manifest.application.name} {{")
        for comp in manifest.application.components:
            out.append(f"    component {comp.name} on {comp.ovf_id} {{")
            for kpi in comp.kpis:
                line = (f"      kpi {kpi.qualified_name} {kpi.type_name} "
                        f"every {_num(kpi.frequency_s)}")
                if kpi.category != "Agent":
                    line += f" category {kpi.category}"
                if kpi.units:
                    line += f" units {_quote(kpi.units)}"
                if kpi.default is not None:
                    line += f" default {_num(kpi.default)}"
                out.append(line)
            out.append("    }")
        out.append("  }")

    for rule in manifest.elasticity_rules:
        header = (f"  rule {rule.name} within "
                  f"{_num(rule.trigger.time_constraint_ms)}")
        if rule.cooldown_s is not None:
            header += f" cooldown {_num(rule.cooldown_s)}"
        out.append(header + " {")
        out.append(f"    when {rule.trigger.expression.unparse()}")
        for action in rule.actions:
            out.append(f"    do {action.unparse()}")
        out.append("  }")

    for slo in manifest.sla:
        out.append(
            f"  slo {slo.name} period {_num(slo.evaluation_period_s)} "
            f"target {_num(slo.target_compliance)} "
            f"window {_num(slo.assessment_window_s)} "
            f"penalty {_num(slo.penalty_per_breach)} {{"
        )
        out.append(f"    must {slo.expression.unparse()}")
        out.append("  }")

    out.append("}")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

class _Lines:
    """Comment-stripped, significant lines with block tracking."""

    def __init__(self, text: str):
        self.lines: list[tuple[int, str]] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            stripped = raw.split("#", 1)[0].strip()
            if stripped:
                self.lines.append((lineno, stripped))
        self.index = 0

    def peek(self) -> Optional[tuple[int, str]]:
        return self.lines[self.index] if self.index < len(self.lines) else None

    def next(self) -> tuple[int, str]:
        item = self.peek()
        if item is None:
            raise HutnSyntaxError("unexpected end of input")
        self.index += 1
        return item


def _tokens(line: str, lineno: int) -> list[str]:
    try:
        lexer = shlex.shlex(line, posix=True)
        lexer.whitespace_split = True
        lexer.commenters = ""
        return list(lexer)
    except ValueError as exc:
        raise HutnSyntaxError(f"line {lineno}: {exc}") from exc


def _expect_block_open(tokens: list[str], lineno: int) -> list[str]:
    if not tokens or tokens[-1] != "{":
        raise HutnSyntaxError(f"line {lineno}: expected '{{' at end of line")
    return tokens[:-1]


def _parse_float(text: str, lineno: int, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise HutnSyntaxError(
            f"line {lineno}: expected a number for {what}, got {text!r}"
        ) from None


def manifest_from_text(text: str) -> ServiceManifest:
    """Parse the textual notation back into the abstract syntax."""
    lines = _Lines(text)
    lineno, header = lines.next()
    tokens = _expect_block_open(_tokens(header, lineno), lineno)
    if len(tokens) != 2 or tokens[0] != "service":
        raise HutnSyntaxError(
            f"line {lineno}: expected 'service <name> {{', got {header!r}"
        )
    service_name = tokens[1]

    networks: list[LogicalNetwork] = []
    references: list[FileReference] = []
    disks: list[VirtualDisk] = []
    systems: list[VirtualSystem] = []
    startup: list[StartupEntry] = []
    colocations: list[ColocationConstraint] = []
    anti_colocations: list[AntiColocationConstraint] = []
    site_placements: list[SitePlacement] = []
    per_host_caps: list[tuple[str, int]] = []
    app_name: Optional[str] = None
    components: list[ComponentDescription] = []
    rules: list[ElasticityRule] = []
    slos: list[ServiceLevelObjective] = []

    def kpi_defaults() -> dict[str, float]:
        return {k.qualified_name: k.default
                for c in components for k in c.kpis if k.default is not None}

    while True:
        lineno, line = lines.next()
        if line == "}":
            break
        tokens = _tokens(line, lineno)
        keyword = tokens[0]

        if keyword == "network":
            if len(tokens) < 2:
                raise HutnSyntaxError(f"line {lineno}: network needs a name")
            public = "public" in tokens[2:]
            rest = [t for t in tokens[2:] if t != "public"]
            networks.append(LogicalNetwork(
                tokens[1], description=rest[0] if rest else "",
                public=public))

        elif keyword == "file":
            # file <id> at <href> size <mb>
            if (len(tokens) != 6 or tokens[2] != "at" or tokens[4] != "size"):
                raise HutnSyntaxError(
                    f"line {lineno}: expected 'file <id> at <href> size <mb>'"
                )
            references.append(FileReference(
                tokens[1], tokens[3],
                _parse_float(tokens[5], lineno, "file size")))

        elif keyword == "disk":
            # disk <id> from <file> [capacity <mb>]
            if len(tokens) not in (4, 6) or tokens[2] != "from":
                raise HutnSyntaxError(
                    f"line {lineno}: expected "
                    f"'disk <id> from <file> [capacity <mb>]'"
                )
            capacity = None
            if len(tokens) == 6:
                if tokens[4] != "capacity":
                    raise HutnSyntaxError(
                        f"line {lineno}: expected 'capacity', got {tokens[4]!r}"
                    )
                capacity = _parse_float(tokens[5], lineno, "capacity")
            disks.append(VirtualDisk(tokens[1], tokens[3], capacity))

        elif keyword == "system":
            tokens = _expect_block_open(tokens, lineno)
            if len(tokens) != 2:
                raise HutnSyntaxError(f"line {lineno}: system needs a name")
            systems.append(_parse_system(tokens[1], lines))

        elif keyword == "startup":
            _expect_block_open(tokens, lineno)
            while True:
                lineno, line = lines.next()
                if line == "}":
                    break
                entry_tokens = _tokens(line, lineno)
                if len(entry_tokens) < 3 or entry_tokens[1] != "order":
                    raise HutnSyntaxError(
                        f"line {lineno}: expected '<system> order <n> "
                        f"[nowait]'"
                    )
                startup.append(StartupEntry(
                    entry_tokens[0],
                    int(_parse_float(entry_tokens[2], lineno, "order")),
                    wait_for_guest="nowait" not in entry_tokens[3:],
                ))

        elif keyword == "placement":
            _expect_block_open(tokens, lineno)
            while True:
                lineno, line = lines.next()
                if line == "}":
                    break
                p = _tokens(line, lineno)
                if p[0] == "colocate" and len(p) == 4 and p[2] == "with":
                    colocations.append(ColocationConstraint(p[1], p[3]))
                elif (p[0] == "anti-colocate" and len(p) == 4
                      and p[2] == "avoid"):
                    anti_colocations.append(
                        AntiColocationConstraint(p[1], p[3]))
                elif p[0] == "per-host-cap" and len(p) == 3:
                    per_host_caps.append(
                        (p[1], int(_parse_float(p[2], lineno, "cap"))))
                elif p[0] == "site" and len(p) >= 2:
                    site_placements.append(_parse_site(p, lineno))
                else:
                    raise HutnSyntaxError(
                        f"line {lineno}: unknown placement statement "
                        f"{line!r}"
                    )

        elif keyword == "application":
            tokens = _expect_block_open(tokens, lineno)
            if len(tokens) != 2:
                raise HutnSyntaxError(
                    f"line {lineno}: application needs a name")
            app_name = tokens[1]
            while True:
                lineno, line = lines.next()
                if line == "}":
                    break
                c = _tokens(line, lineno)
                c = _expect_block_open(c, lineno)
                if len(c) != 4 or c[0] != "component" or c[2] != "on":
                    raise HutnSyntaxError(
                        f"line {lineno}: expected "
                        f"'component <name> on <system> {{'"
                    )
                components.append(_parse_adl_component(c[1], c[3], lines))

        elif keyword == "rule":
            rules.append(_parse_rule(tokens, lines, lineno, kpi_defaults()))

        elif keyword == "slo":
            slos.append(_parse_slo(tokens, lines, lineno, kpi_defaults()))

        else:
            raise HutnSyntaxError(
                f"line {lineno}: unknown declaration {keyword!r}"
            )

    application = None
    if app_name is not None or components:
        application = ApplicationDescription(
            name=app_name or service_name, components=tuple(components))
    return ServiceManifest(
        service_name=service_name,
        references=tuple(references),
        disks=tuple(disks),
        networks=tuple(networks),
        virtual_systems=tuple(systems),
        startup=tuple(startup),
        placement=PlacementPolicySection(
            colocations=tuple(colocations),
            anti_colocations=tuple(anti_colocations),
            site_placements=tuple(site_placements),
            per_host_caps=tuple(per_host_caps),
        ),
        application=application,
        elasticity_rules=tuple(rules),
        sla=SLASection(tuple(slos)),
    )


def _parse_system(system_id: str, lines: _Lines) -> VirtualSystem:
    info = ""
    cpu, memory = 1.0, 1024.0
    disk_refs: tuple[str, ...] = ()
    network_refs: tuple[str, ...] = ()
    customisation: list[tuple[str, str]] = []
    bounds = InstanceBounds()
    replicable = True
    while True:
        lineno, line = lines.next()
        if line == "}":
            break
        tokens = _tokens(line, lineno)
        key = tokens[0]
        if key == "info":
            info = tokens[1] if len(tokens) > 1 else ""
        elif key == "cpu":
            cpu = _parse_float(tokens[1], lineno, "cpu")
        elif key == "memory":
            memory = _parse_float(tokens[1], lineno, "memory")
        elif key == "disks":
            disk_refs = tuple(tokens[1:])
        elif key == "networks":
            network_refs = tuple(tokens[1:])
        elif key == "custom":
            if len(tokens) != 4 or tokens[2] != "=":
                raise HutnSyntaxError(
                    f"line {lineno}: expected 'custom \"key\" = \"value\"'"
                )
            customisation.append((tokens[1], tokens[3]))
        elif key == "instances":
            # instances <min>..<max> initial <n>
            match = re.match(r"^(\d+)\.\.(\d+)$", tokens[1]) \
                if len(tokens) >= 2 else None
            if (match is None or len(tokens) != 4
                    or tokens[2] != "initial"):
                raise HutnSyntaxError(
                    f"line {lineno}: expected "
                    f"'instances <min>..<max> initial <n>'"
                )
            bounds = InstanceBounds(
                initial=int(tokens[3]),
                minimum=int(match.group(1)),
                maximum=int(match.group(2)),
            )
        elif key == "not-replicable":
            replicable = False
        else:
            raise HutnSyntaxError(
                f"line {lineno}: unknown system attribute {key!r}"
            )
    return VirtualSystem(
        system_id=system_id, info=info,
        hardware=VirtualHardware(cpu=cpu, memory_mb=memory),
        disk_refs=disk_refs, network_refs=network_refs,
        customisation=tuple(customisation), instances=bounds,
        replicable=replicable,
    )


def _parse_site(tokens: list[str], lineno: int) -> SitePlacement:
    system_id = None if tokens[1] == "*" else tokens[1]
    favour: list[str] = []
    avoid: list[str] = []
    trusted = False
    i = 2
    while i < len(tokens):
        if tokens[i] == "favour" and i + 1 < len(tokens):
            favour.append(tokens[i + 1])
            i += 2
        elif tokens[i] == "avoid" and i + 1 < len(tokens):
            avoid.append(tokens[i + 1])
            i += 2
        elif tokens[i] == "trusted":
            trusted = True
            i += 1
        else:
            raise HutnSyntaxError(
                f"line {lineno}: unknown site qualifier {tokens[i]!r}"
            )
    return SitePlacement(system_id=system_id, favour_sites=tuple(favour),
                         avoid_sites=tuple(avoid), require_trusted=trusted)


def _parse_adl_component(name: str, ovf_id: str,
                         lines: _Lines) -> ComponentDescription:
    kpis: list[KeyPerformanceIndicator] = []
    while True:
        lineno, line = lines.next()
        if line == "}":
            break
        tokens = _tokens(line, lineno)
        if tokens[0] != "kpi" or len(tokens) < 5 or tokens[3] != "every":
            raise HutnSyntaxError(
                f"line {lineno}: expected 'kpi <qname> <type> every <s> "
                f"[category C] [units U] [default D]'"
            )
        qname, type_name = tokens[1], tokens[2]
        frequency = _parse_float(tokens[4], lineno, "frequency")
        category, units, default = "Agent", "", None
        i = 5
        while i < len(tokens):
            if tokens[i] == "category" and i + 1 < len(tokens):
                category = tokens[i + 1]
                i += 2
            elif tokens[i] == "units" and i + 1 < len(tokens):
                units = tokens[i + 1]
                i += 2
            elif tokens[i] == "default" and i + 1 < len(tokens):
                default = _parse_float(tokens[i + 1], lineno, "default")
                i += 2
            else:
                raise HutnSyntaxError(
                    f"line {lineno}: unknown kpi qualifier {tokens[i]!r}"
                )
        kpis.append(KeyPerformanceIndicator(
            qualified_name=qname,
            type=KeyPerformanceIndicator.type_from_name(type_name),
            frequency_s=frequency, category=category, units=units,
            default=default,
        ))
    return ComponentDescription(name=name, ovf_id=ovf_id, kpis=tuple(kpis))


def _parse_rule(tokens: list[str], lines: _Lines, lineno: int,
                defaults: dict[str, float]) -> ElasticityRule:
    tokens = _expect_block_open(tokens, lineno)
    # rule <name> within <ms> [cooldown <s>]
    if len(tokens) < 4 or tokens[2] != "within":
        raise HutnSyntaxError(
            f"line {lineno}: expected 'rule <name> within <ms> "
            f"[cooldown <s>] {{'"
        )
    name = tokens[1]
    time_constraint_ms = _parse_float(tokens[3], lineno, "time constraint")
    cooldown = None
    if len(tokens) == 6 and tokens[4] == "cooldown":
        cooldown = _parse_float(tokens[5], lineno, "cooldown")
    elif len(tokens) != 4:
        raise HutnSyntaxError(f"line {lineno}: malformed rule header")

    expression = None
    actions = []
    while True:
        lineno, line = lines.next()
        if line == "}":
            break
        if line.startswith("when "):
            expression = parse_expression(line[5:], defaults)
        elif line.startswith("do "):
            actions.append(parse_action(line[3:]))
        else:
            raise HutnSyntaxError(
                f"line {lineno}: expected 'when <expr>' or 'do <action>'"
            )
    if expression is None:
        raise HutnSyntaxError(f"rule {name!r} lacks a 'when' condition")
    return ElasticityRule(
        name=name,
        trigger=Trigger(expression, time_constraint_ms=time_constraint_ms),
        actions=tuple(actions),
        cooldown_s=cooldown,
    )


def _parse_slo(tokens: list[str], lines: _Lines, lineno: int,
               defaults: dict[str, float]) -> ServiceLevelObjective:
    tokens = _expect_block_open(tokens, lineno)
    # slo <name> period <s> target <f> window <s> penalty <amount>
    if (len(tokens) != 10 or tokens[2] != "period" or tokens[4] != "target"
            or tokens[6] != "window" or tokens[8] != "penalty"):
        raise HutnSyntaxError(
            f"line {lineno}: expected 'slo <name> period <s> target <f> "
            f"window <s> penalty <amount> {{'"
        )
    name = tokens[1]
    period = _parse_float(tokens[3], lineno, "period")
    target = _parse_float(tokens[5], lineno, "target")
    window = _parse_float(tokens[7], lineno, "window")
    penalty = _parse_float(tokens[9], lineno, "penalty")
    expression = None
    while True:
        lineno, line = lines.next()
        if line == "}":
            break
        if line.startswith("must "):
            expression = parse_expression(line[5:], defaults)
        else:
            raise HutnSyntaxError(f"line {lineno}: expected 'must <expr>'")
    if expression is None:
        raise HutnSyntaxError(f"slo {name!r} lacks a 'must' condition")
    return ServiceLevelObjective(
        name=name, expression=expression, evaluation_period_s=period,
        target_compliance=target, assessment_window_s=window,
        penalty_per_breach=penalty,
    )
