"""Service-level objectives in the manifest (the paper's §8 future work).

"In future work, we aim to develop appropriate syntax and semantics for
resource provisioning service level agreements. Building upon the approach
laid out here, we aim to provide a framework for the automated monitoring
and protection of service level obligations based on defined semantic
constraints."

This module supplies that syntax, built from the same ingredients as the
elasticity rules: an SLO is a named condition over KPI qualified names
(reusing the §4.2.1 expression language, including the time-series window
operations) that is expected to *hold*; compliance is assessed as the
fraction of evaluations over an assessment window in which it held, against
a target; breaching the target accrues a penalty. The run-time half —
evaluation, violation records, penalty accounting, protection hooks — lives
in :mod:`repro.core.sla`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .expressions import Expression, parse_expression

__all__ = ["ServiceLevelObjective", "SLASection"]


@dataclass(frozen=True)
class ServiceLevelObjective:
    """One obligation: a condition that should hold, how often, or else.

    Attributes
    ----------
    name:
        Identifier used in violation records and penalty statements.
    expression:
        Condition over KPI qualified names that represents "the service is
        healthy" — e.g. ``@com.shop.response.time < 2`` or
        ``mean(@uk.ucl.condor.schedd.queuesize, 300) < 50``.
    evaluation_period_s:
        How often the monitor samples the condition.
    target_compliance:
        Fraction of samples in an assessment window that must hold
        (e.g. 0.95). 1.0 means every sample must hold.
    assessment_window_s:
        Length of the sliding window over which compliance is assessed.
    penalty_per_breach:
        Credit owed to the service provider for each assessment window that
        ends below target (arbitrary currency units).
    """

    name: str
    expression: Expression
    evaluation_period_s: float = 30.0
    target_compliance: float = 0.95
    assessment_window_s: float = 3600.0
    penalty_per_breach: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if self.evaluation_period_s <= 0:
            raise ValueError(f"SLO {self.name}: period must be positive")
        if not 0 < self.target_compliance <= 1:
            raise ValueError(
                f"SLO {self.name}: target compliance must be in (0, 1]"
            )
        if self.assessment_window_s < self.evaluation_period_s:
            raise ValueError(
                f"SLO {self.name}: assessment window shorter than the "
                f"evaluation period"
            )
        if self.penalty_per_breach < 0:
            raise ValueError(f"SLO {self.name}: penalty must be non-negative")

    def kpi_references(self) -> set[str]:
        return self.expression.kpi_references()

    @classmethod
    def from_text(cls, name: str, expression: str, *,
                  evaluation_period_s: float = 30.0,
                  target_compliance: float = 0.95,
                  assessment_window_s: float = 3600.0,
                  penalty_per_breach: float = 1.0,
                  defaults: Optional[dict[str, float]] = None
                  ) -> "ServiceLevelObjective":
        return cls(
            name=name,
            expression=parse_expression(expression, defaults),
            evaluation_period_s=evaluation_period_s,
            target_compliance=target_compliance,
            assessment_window_s=assessment_window_s,
            penalty_per_breach=penalty_per_breach,
        )


@dataclass(frozen=True)
class SLASection:
    """The manifest's SLA section: the agreed objectives."""

    objectives: tuple[ServiceLevelObjective, ...] = ()

    def __post_init__(self) -> None:
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO names")

    def objective(self, name: str) -> ServiceLevelObjective:
        for o in self.objectives:
            if o.name == name:
                return o
        raise KeyError(f"no SLO {name!r}")

    def __bool__(self) -> bool:
        return bool(self.objectives)

    def __iter__(self):
        return iter(self.objectives)
