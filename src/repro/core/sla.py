"""Automated monitoring and protection of service-level obligations.

The runtime half of the §8 future-work item: the manifest's SLA section
(:mod:`repro.core.manifest.sla`) declares the obligations; this monitor
evaluates them against live monitoring data, assesses compliance over
sliding windows, accrues penalties on breaches, and invokes *protection
hooks* so the provider can react (e.g. force a scale-up) before or as an
obligation is breached — "automated monitoring and protection of service
level obligations based on defined semantic constraints".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..monitoring.consumers import MeasurementJournal, MeasurementStore
from ..monitoring.distribution import DistributionFramework
from ..monitoring.measurements import Measurement
from ..sim import Environment, Interrupt, TraceLog
from .manifest.expressions import EvaluationContext
from .manifest.sla import SLASection, ServiceLevelObjective

__all__ = ["SLOSample", "SLOBreach", "SLAMonitor"]


@dataclass(frozen=True)
class SLOSample:
    """One periodic evaluation of an objective."""

    time: float
    slo: str
    held: bool


@dataclass(frozen=True)
class SLOBreach:
    """An assessment window that ended below the target compliance."""

    time: float
    slo: str
    compliance: float
    target: float
    penalty: float


@dataclass
class _ObjectiveState:
    slo: ServiceLevelObjective
    samples: list[SLOSample] = field(default_factory=list)
    breaches: list[SLOBreach] = field(default_factory=list)
    #: end of the last assessed window (assessments don't overlap)
    last_assessed: float = 0.0
    loop: object = None


#: Protection hook: called with (objective, compliance) when a window
#: breaches; returning True means "handled" (logged as protected).
ProtectionHook = Callable[[ServiceLevelObjective, float], bool]


class SLAMonitor:
    """Evaluates a service's SLA section against its monitoring streams."""

    def __init__(self, env: Environment, service_id: str, sla: SLASection, *,
                 trace: Optional[TraceLog] = None,
                 kpi_defaults: Optional[dict[str, float]] = None):
        self.env = env
        self.service_id = service_id
        self.sla = sla
        self.trace = trace if trace is not None else TraceLog(env)
        self.store = MeasurementStore()
        self.journal = MeasurementJournal()
        self._defaults = dict(kpi_defaults or {})
        self._states = {slo.name: _ObjectiveState(slo) for slo in sla}
        self._hooks: list[ProtectionHook] = []
        self._subscriptions: list = []
        self._started = False
        # Registry views over the sample/breach lists — zero cost on the
        # evaluation path, live totals in the unified metrics registry.
        metrics = env.metrics
        metrics.register_view(
            "core.sla.samples",
            lambda: sum(len(s.samples) for s in self._states.values()),
            service=service_id)
        metrics.register_view(
            "core.sla.breaches",
            lambda: sum(len(s.breaches) for s in self._states.values()),
            service=service_id)
        metrics.register_view(
            "core.sla.penalties_accrued",
            lambda: self.penalties_accrued,
            service=service_id)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def subscribe_to(self, network: DistributionFramework):
        subscription = network.subscribe(self.notify,
                                         service_id=self.service_id)
        self._subscriptions.append(subscription)
        return subscription

    def detach(self) -> None:
        """Cancel this monitor's network subscriptions (service teardown)."""
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions.clear()

    def notify(self, measurement: Measurement) -> None:
        if measurement.service_id != self.service_id:
            return
        self.store.notify(measurement)
        self.journal.notify(measurement)

    def add_protection_hook(self, hook: ProtectionHook) -> None:
        self._hooks.append(hook)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for state in self._states.values():
            state.last_assessed = self.env.now
            state.loop = self.env.process(
                self._objective_loop(state),
                name=f"slo:{self.service_id}:{state.slo.name}",
            )

    def stop(self) -> None:
        for state in self._states.values():
            if state.loop is not None and state.loop.is_alive:
                state.loop.interrupt("sla monitor stopped")
            state.loop = None
        self._started = False

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _context(self) -> EvaluationContext:
        def latest(name: str) -> Optional[float]:
            value = self.store.value(self.service_id, name)
            if value is None:
                return self._defaults.get(name)
            return float(value)

        def window(name: str, window_s: float, op: str) -> Optional[float]:
            since, until = self.env.now - window_s, self.env.now
            if op == "mean":
                return self.journal.window_mean(self.service_id, name,
                                                since, until)
            if op == "min":
                return self.journal.window_min(self.service_id, name,
                                               since, until)
            if op == "max":
                return self.journal.window_max(self.service_id, name,
                                               since, until)
            return float(len(self.journal.window(self.service_id, name,
                                                 since, until)))

        return EvaluationContext(latest=latest, window=window)

    def sample(self, name: str) -> SLOSample:
        """Evaluate one objective now (also used by the periodic loop)."""
        state = self._states[name]
        try:
            held = state.slo.expression.holds(self._context())
        except Exception:
            # Not yet evaluable (no data, no default): treated as held —
            # obligations begin once the service actually reports.
            held = True
        sample = SLOSample(self.env.now, name, held)
        state.samples.append(sample)
        if not held:
            self.trace.emit("sla", "slo.violated", slo=name,
                            service=self.service_id)
        return sample

    def _objective_loop(self, state: _ObjectiveState):
        slo = state.slo
        try:
            while True:
                yield self.env.timeout(slo.evaluation_period_s)
                self.sample(slo.name)
                if self.env.now >= state.last_assessed + slo.assessment_window_s:
                    self._assess(state)
        except Interrupt:
            pass

    def _assess(self, state: _ObjectiveState) -> None:
        slo = state.slo
        window_start = state.last_assessed
        window_end = self.env.now
        samples = [s for s in state.samples
                   if window_start < s.time <= window_end]
        state.last_assessed = window_end
        if not samples:
            return
        compliance = sum(1 for s in samples if s.held) / len(samples)
        if compliance >= slo.target_compliance:
            self.trace.emit("sla", "slo.window.ok", slo=slo.name,
                            service=self.service_id, compliance=compliance)
            return
        breach = SLOBreach(
            time=window_end, slo=slo.name, compliance=compliance,
            target=slo.target_compliance, penalty=slo.penalty_per_breach,
        )
        state.breaches.append(breach)
        self.trace.emit("sla", "slo.breach", slo=slo.name,
                        service=self.service_id, compliance=compliance,
                        penalty=slo.penalty_per_breach)
        for hook in self._hooks:
            try:
                if hook(slo, compliance):
                    self.trace.emit("sla", "slo.protected", slo=slo.name,
                                    service=self.service_id)
                    break
            except Exception as exc:
                self.trace.emit("sla", "slo.protection.failed", slo=slo.name,
                                service=self.service_id, error=str(exc))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def compliance(self, name: str, *, since: float = 0.0) -> Optional[float]:
        """Held-fraction of all samples since ``since`` (None if none)."""
        samples = [s for s in self._states[name].samples if s.time >= since]
        if not samples:
            return None
        return sum(1 for s in samples if s.held) / len(samples)

    def breaches(self, name: Optional[str] = None) -> list[SLOBreach]:
        if name is not None:
            return list(self._states[name].breaches)
        return sorted(
            (b for s in self._states.values() for b in s.breaches),
            key=lambda b: b.time,
        )

    @property
    def penalties_accrued(self) -> float:
        return sum(b.penalty for b in self.breaches())

    def statement(self) -> dict[str, dict]:
        """Per-objective summary — the basis of a periodic SLA statement."""
        out = {}
        for name, state in self._states.items():
            out[name] = {
                "samples": len(state.samples),
                "compliance": self.compliance(name),
                "breaches": len(state.breaches),
                "penalties": sum(b.penalty for b in state.breaches),
                "target": state.slo.target_compliance,
            }
        return out
