"""Generated monitoring instruments (§4.2.3).

"We can assist in identifying and flagging such errors by programmatically
generating monitoring instruments which will validate run-time constraints
... These are currently of two forms. The first is simply responsible for
gathering and reporting the values of specific KPIs described in the
manifest. The second will validate the correct enforcement of elasticity
rules by evaluating incoming monitoring events and verifying where
appropriate that suitable adjustment operations were invoked by matching
entries and time frames in infrastructural logs."

The UCL-MDA tool emitted Java; here the "generation" step takes a manifest
and returns live instrument objects bound to the monitoring network and the
infrastructure trace log — the behaviourally equivalent artefact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...monitoring.consumers import MeasurementJournal
from ...monitoring.distribution import DistributionFramework
from ...sim.tracing import TraceLog
from ..manifest.expressions import EvaluationContext
from ..manifest.model import ServiceManifest
from .framework import Violation

__all__ = ["KPIReport", "KPIReporter", "EnforcementFinding",
           "ElasticityEnforcementValidator", "generate_instruments"]


@dataclass
class KPIReport:
    """Summary of one KPI stream's observed behaviour."""

    qualified_name: str
    declared_frequency_s: float
    events: int
    first_seen: Optional[float]
    last_seen: Optional[float]
    last_value: Optional[float]
    mean_interval_s: Optional[float]

    @property
    def silent(self) -> bool:
        return self.events == 0

    def frequency_ok(self, tolerance: float = 0.5) -> bool:
        """Observed publication period within ±tolerance of declared."""
        if self.mean_interval_s is None:
            return not self.silent
        declared = self.declared_frequency_s
        return abs(self.mean_interval_s - declared) <= tolerance * declared


class KPIReporter:
    """Instrument #1: gathers and reports manifest-declared KPI streams."""

    def __init__(self, manifest: ServiceManifest, service_id: str,
                 network: DistributionFramework):
        if manifest.application is None:
            raise ValueError("manifest declares no application description")
        self.manifest = manifest
        self.service_id = service_id
        self.journal = MeasurementJournal()
        self._subscriptions = [
            network.subscribe(self.journal.notify, service_id=service_id,
                              qualified_name=kpi.qualified_name)
            for kpi in manifest.application.all_kpis()
        ]

    def detach(self) -> None:
        """Cancel this instrument's network subscriptions."""
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions.clear()

    def report(self) -> list[KPIReport]:
        reports = []
        for kpi in self.manifest.application.all_kpis():
            stream = self.journal.stream(self.service_id, kpi.qualified_name)
            if stream:
                intervals = [
                    b.timestamp - a.timestamp
                    for a, b in zip(stream, stream[1:])
                ]
                mean_interval = (sum(intervals) / len(intervals)
                                 if intervals else None)
                reports.append(KPIReport(
                    qualified_name=kpi.qualified_name,
                    declared_frequency_s=kpi.frequency_s,
                    events=len(stream),
                    first_seen=stream[0].timestamp,
                    last_seen=stream[-1].timestamp,
                    last_value=float(stream[-1].value),
                    mean_interval_s=mean_interval,
                ))
            else:
                reports.append(KPIReport(
                    qualified_name=kpi.qualified_name,
                    declared_frequency_s=kpi.frequency_s,
                    events=0, first_seen=None, last_seen=None,
                    last_value=None, mean_interval_s=None,
                ))
        return reports

    def silent_kpis(self) -> list[str]:
        return [r.qualified_name for r in self.report() if r.silent]


@dataclass(frozen=True)
class EnforcementFinding:
    """One reconstructed rule-evaluation instant and its verdict."""

    rule: str
    held_at: float
    deadline: float
    action_at: Optional[float]
    verdict: str  # "enforced", "missed", "cooldown"


class ElasticityEnforcementValidator:
    """Instrument #2: replay monitoring events, verify actions followed.

    The validator reconstructs the rule interpreter's view: it replays the
    journal's events in time order into a latest-value table, evaluates each
    rule whenever one of its KPIs updates, and — where the condition held —
    looks for a matching ``elasticity.action`` entry in the infrastructure
    log within the rule's time constraint. A holding condition inside the
    rule's cooldown window after a firing is excused.
    """

    def __init__(self, manifest: ServiceManifest, service_id: str,
                 journal: MeasurementJournal, trace: TraceLog):
        self.manifest = manifest
        self.service_id = service_id
        self.journal = journal
        self.trace = trace

    def _action_times(self, rule_name: str) -> list[float]:
        return [
            r.time for r in self.trace.query(kind="elasticity.action")
            if r.details.get("rule") == rule_name
            and r.details.get("service") == self.service_id
        ]

    def _refusal_times(self, rule_name: str) -> list[float]:
        """Times the Service Manager evaluated the rule and *refused* the
        action (e.g. instance bounds already reached because the gating KPI
        was stale). A logged refusal is a timely response, not a miss."""
        return [
            r.time for r in self.trace.query(kind="action.refused")
            if r.details.get("rule") == rule_name
            and r.details.get("service") == self.service_id
        ]

    def findings(self) -> list[EnforcementFinding]:
        events = sorted(
            (m for m in self.journal if m.service_id == self.service_id),
            key=lambda m: (m.timestamp, m.seqno),
        )
        latest: dict[str, float] = {}
        defaults = self.manifest.kpi_defaults()
        findings: list[EnforcementFinding] = []
        for rule in self.manifest.elasticity_rules:
            relevant = rule.kpi_references()
            actions = self._action_times(rule.name)
            refusals = self._refusal_times(rule.name)
            tc = rule.trigger.time_constraint_s
            cooldown = rule.effective_cooldown_s
            latest.clear()
            last_enforced: Optional[float] = None
            # Group same-timestamp events: the interpreter never observes a
            # half-applied instant, so the replay must apply all simultaneous
            # updates before judging the condition.
            index = 0
            while index < len(events):
                t = events[index].timestamp
                group_relevant = False
                while index < len(events) and events[index].timestamp == t:
                    event = events[index]
                    latest[event.qualified_name] = float(event.value)
                    if event.qualified_name in relevant:
                        group_relevant = True
                    index += 1
                if not group_relevant:
                    continue

                def window(name, window_s, op, _t=t):
                    values = [
                        float(m.value)
                        for m in self.journal.stream(self.service_id, name)
                        if _t - window_s <= m.timestamp <= _t
                    ]
                    if not values:
                        return None
                    if op == "mean":
                        return sum(values) / len(values)
                    if op == "min":
                        return min(values)
                    if op == "max":
                        return max(values)
                    return float(len(values))

                bindings = EvaluationContext(
                    latest=lambda name: latest.get(name, defaults.get(name)),
                    window=window,
                )
                try:
                    holds = rule.trigger.expression.holds(bindings)
                except Exception:
                    continue  # not yet evaluable — matches interpreter
                if not holds:
                    continue
                action_at = next(
                    (a for a in actions if t <= a <= t + tc), None)
                if action_at is not None:
                    verdict = "enforced"
                    last_enforced = action_at
                elif (last_enforced is not None
                      and t <= last_enforced + cooldown):
                    verdict = "cooldown"
                elif any(t <= r <= t + tc for r in refusals):
                    verdict = "refused"
                else:
                    verdict = "missed"
                findings.append(EnforcementFinding(
                    rule=rule.name, held_at=t, deadline=t + tc,
                    action_at=action_at, verdict=verdict,
                ))
        return findings

    def violations(self) -> list[Violation]:
        return [
            Violation(
                constraint="elasticity-enforcement",
                message=(
                    f"rule {f.rule!r} held at t={f.held_at:.1f} but no "
                    f"action was invoked by t={f.deadline:.1f}"
                ),
                context={"rule": f.rule, "held_at": f.held_at},
            )
            for f in self.findings() if f.verdict == "missed"
        ]

    def summary(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for f in self.findings():
            per_rule = out.setdefault(
                f.rule, {"enforced": 0, "cooldown": 0, "refused": 0,
                         "missed": 0})
            per_rule[f.verdict] += 1
        return out


@dataclass
class GeneratedInstruments:
    """Everything §4.2.3's generator produces for one manifest."""

    reporter: KPIReporter
    validator_factory: "_ValidatorFactory" = field(repr=False, default=None)

    def validator(self, trace: TraceLog) -> ElasticityEnforcementValidator:
        return self.validator_factory(trace)


class _ValidatorFactory:
    def __init__(self, manifest: ServiceManifest, service_id: str,
                 journal: MeasurementJournal):
        self.manifest = manifest
        self.service_id = service_id
        self.journal = journal

    def __call__(self, trace: TraceLog) -> ElasticityEnforcementValidator:
        return ElasticityEnforcementValidator(
            self.manifest, self.service_id, self.journal, trace)


def generate_instruments(manifest: ServiceManifest, service_id: str,
                         network: DistributionFramework
                         ) -> GeneratedInstruments:
    """The §4.2.3 generation step: manifest → live instruments.

    The reporter (and the journal that feeds the validator) subscribe to the
    network immediately, so generate the instruments before deploying the
    service if full coverage from t=0 is wanted.
    """
    reporter = KPIReporter(manifest, service_id, network)
    return GeneratedInstruments(
        reporter=reporter,
        validator_factory=_ValidatorFactory(
            manifest, service_id, reporter.journal),
    )
