"""Model-denotational constraint framework.

§4.2: "the semantics of the language can be expressed in the model
denotational style ... as constraints between the abstract syntax and domain
elements that model the operation of Cloud infrastructure components. These
constraints are formally defined using the Object Constraint Language (OCL)".

OCL itself is Java/Eclipse tooling in the original (UCL-MDA); here the same
role is played by *constraint objects*: side-effect-free predicates over
(manifest, infrastructure state) pairs that report violations rather than
change anything — exactly OCL's evaluation discipline ("OCL operations are
side effect free ... Nevertheless they can be used to verify that the dynamic
capacity adjustments have indeed taken place").

§4.2.2 on when to check: "it is not feasible in practice to continuously
check ... it is preferable to tie the verification to monitoring events or
specific actions, such as a new deployment" — hence
:meth:`ConstraintSuite.check` is explicit and cheap enough to call from
deployment hooks and periodic audits.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Violation", "Constraint", "ConstraintSuite", "CheckReport"]


@dataclass(frozen=True)
class Violation:
    """One failed constraint instance."""

    constraint: str
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.constraint}: {self.message}"


class Constraint(abc.ABC):
    """A named, side-effect-free check over a domain object."""

    #: short identifier used in reports
    name: str = "constraint"

    @abc.abstractmethod
    def check(self, domain: Any) -> list[Violation]:
        """Return all violations (empty list = the invariant holds)."""

    def violation(self, message: str, **context: Any) -> Violation:
        return Violation(self.name, message, context)


@dataclass
class CheckReport:
    """Outcome of running a suite: which constraints ran, what failed."""

    checked: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_constraint(self, name: str) -> list[Violation]:
        return [v for v in self.violations if v.constraint == name]

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{len(self.checked)} constraint(s) checked: {status}"


class ConstraintSuite:
    """An ordered collection of constraints evaluated together."""

    def __init__(self, constraints: Optional[list[Constraint]] = None):
        self.constraints: list[Constraint] = list(constraints or [])

    def add(self, constraint: Constraint) -> "ConstraintSuite":
        self.constraints.append(constraint)
        return self

    def check(self, domain: Any) -> CheckReport:
        report = CheckReport()
        for constraint in self.constraints:
            report.checked.append(constraint.name)
            report.violations.extend(constraint.check(domain))
        return report
