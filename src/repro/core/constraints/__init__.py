"""Behavioural semantics of the manifest language as checkable constraints
(§4.2.2) and the generated validation instruments (§4.2.3)."""

from .deployment import (
    AntiColocationInvariant,
    AssociationInvariant,
    ColocationInvariant,
    InstanceBoundsInvariant,
    PerHostCapInvariant,
    ProvisioningDomain,
    StartupOrderPostcondition,
    deployment_suite,
)
from .framework import CheckReport, Constraint, ConstraintSuite, Violation
from .instruments import (
    ElasticityEnforcementValidator,
    EnforcementFinding,
    KPIReport,
    KPIReporter,
    generate_instruments,
)

__all__ = [
    "AntiColocationInvariant",
    "AssociationInvariant",
    "ColocationInvariant",
    "InstanceBoundsInvariant",
    "PerHostCapInvariant",
    "ProvisioningDomain",
    "StartupOrderPostcondition",
    "deployment_suite",
    "CheckReport",
    "Constraint",
    "ConstraintSuite",
    "Violation",
    "ElasticityEnforcementValidator",
    "EnforcementFinding",
    "KPIReport",
    "KPIReporter",
    "generate_instruments",
]
