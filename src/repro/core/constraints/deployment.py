"""Deployment-time semantic constraints (§4.2.2, "Service deployment").

The paper's flagship invariant ties the manifest to the deployment
descriptors the Service Manager generates::

    context Association
    inv:
    manifest.vm -> forAll(v |
        dep_descriptor.exists(d |
            d.name = v.id &&
            d.memory = v.virtualhardware.memory &&
            d.disk.source = (manifest.refs.file -> asSet() ->
                             select(id = v.id)) -> first().href
            ...))

"This is a design by contract approach. We are not concerned with the actual
transformation process, but rather that the final product, i.e. the
deployment descriptor, respects certain constraints."

Also here: instance-bound invariants (elastic arrays stay within min/max),
placement invariants (co-location, anti-co-location, per-host caps hold for
the *running* system) and the startup-order postcondition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...cloud.vm import DeploymentDescriptor, VirtualMachine, VMState
from ..manifest.model import ServiceManifest, VirtualSystem
from .framework import Constraint, Violation

__all__ = [
    "ProvisioningDomain",
    "AssociationInvariant",
    "InstanceBoundsInvariant",
    "ColocationInvariant",
    "AntiColocationInvariant",
    "PerHostCapInvariant",
    "StartupOrderPostcondition",
    "deployment_suite",
]


@dataclass
class ProvisioningDomain:
    """The (manifest, infrastructure state) pair constraints evaluate over."""

    manifest: ServiceManifest
    service_id: str
    #: every descriptor the Service Manager generated for this service
    descriptors: list[DeploymentDescriptor] = field(default_factory=list)
    #: every VM created for this service (including stopped ones)
    vms: list[VirtualMachine] = field(default_factory=list)

    # -- helpers -----------------------------------------------------------
    def descriptors_of(self, system_id: str) -> list[DeploymentDescriptor]:
        return [d for d in self.descriptors if d.component_id == system_id]

    def active_vms_of(self, system_id: str) -> list[VirtualMachine]:
        return [vm for vm in self.vms
                if vm.descriptor.component_id == system_id and vm.is_active]

    def running_vms_of(self, system_id: str) -> list[VirtualMachine]:
        return [vm for vm in self.active_vms_of(system_id)
                if vm.state is VMState.RUNNING]


class AssociationInvariant(Constraint):
    """Every virtual system has ≥1 conforming descriptor; every descriptor
    conforms to its virtual system (name, memory, cpu, disk source,
    networks)."""

    name = "association"

    def check(self, domain: ProvisioningDomain) -> list[Violation]:
        violations: list[Violation] = []
        manifest = domain.manifest
        for system in manifest.virtual_systems:
            descriptors = domain.descriptors_of(system.system_id)
            if system.instances.initial > 0 and not descriptors:
                violations.append(self.violation(
                    f"no deployment descriptor generated for virtual system "
                    f"{system.system_id!r}",
                    system=system.system_id,
                ))
                continue
            expected_href = manifest.image_href(system)
            for d in descriptors:
                violations.extend(
                    self._check_descriptor(system, d, expected_href))
        known = set(manifest.system_ids())
        for d in domain.descriptors:
            if d.component_id not in known:
                violations.append(self.violation(
                    f"descriptor {d.name!r} references unknown virtual "
                    f"system {d.component_id!r}",
                    descriptor=d.name,
                ))
        return violations

    def _check_descriptor(self, system: VirtualSystem,
                          d: DeploymentDescriptor,
                          expected_href: str) -> list[Violation]:
        violations = []
        if not d.name.startswith(system.system_id):
            violations.append(self.violation(
                f"descriptor name {d.name!r} does not identify system "
                f"{system.system_id!r} (OCL: d.name = v.id)",
                descriptor=d.name, system=system.system_id,
            ))
        if d.memory_mb != system.hardware.memory_mb:
            violations.append(self.violation(
                f"descriptor {d.name!r} memory {d.memory_mb} ≠ manifest "
                f"{system.hardware.memory_mb} (OCL: d.memory = "
                f"v.virtualhardware.memory)",
                descriptor=d.name,
            ))
        if d.cpu != system.hardware.cpu:
            violations.append(self.violation(
                f"descriptor {d.name!r} cpu {d.cpu} ≠ manifest "
                f"{system.hardware.cpu}",
                descriptor=d.name,
            ))
        if d.disk_source != expected_href:
            violations.append(self.violation(
                f"descriptor {d.name!r} disk source {d.disk_source!r} ≠ "
                f"manifest file href {expected_href!r} (OCL: d.disk.source "
                f"= refs.file.href)",
                descriptor=d.name,
            ))
        if set(d.networks) != set(system.network_refs):
            violations.append(self.violation(
                f"descriptor {d.name!r} networks {sorted(d.networks)} ≠ "
                f"manifest {sorted(system.network_refs)}",
                descriptor=d.name,
            ))
        return violations


class InstanceBoundsInvariant(Constraint):
    """Active instances of every elastic array stay within [min, max]."""

    name = "instance-bounds"

    def check(self, domain: ProvisioningDomain) -> list[Violation]:
        violations = []
        for system in domain.manifest.virtual_systems:
            count = len(domain.active_vms_of(system.system_id))
            bounds = system.instances
            if count > bounds.maximum:
                violations.append(self.violation(
                    f"{system.system_id!r} has {count} active instances, "
                    f"above maximum {bounds.maximum}",
                    system=system.system_id, count=count,
                ))
            if count < bounds.minimum:
                violations.append(self.violation(
                    f"{system.system_id!r} has {count} active instances, "
                    f"below minimum {bounds.minimum}",
                    system=system.system_id, count=count,
                ))
            if not system.replicable and count > 1:
                violations.append(self.violation(
                    f"non-replicable {system.system_id!r} has {count} "
                    f"active instances",
                    system=system.system_id, count=count,
                ))
        return violations


class ColocationInvariant(Constraint):
    """Each running instance of a co-located component shares a host with
    some running instance of its anchor."""

    name = "colocation"

    def check(self, domain: ProvisioningDomain) -> list[Violation]:
        violations = []
        for c in domain.manifest.placement.colocations:
            anchors = domain.running_vms_of(c.with_system_id)
            if not anchors:
                continue  # anchor not up (yet/anymore): nothing to violate
            anchor_hosts = {vm.host for vm in anchors if vm.host is not None}
            for vm in domain.running_vms_of(c.system_id):
                if vm.host not in anchor_hosts:
                    violations.append(self.violation(
                        f"{vm.vm_id} ({c.system_id}) must share a host with "
                        f"{c.with_system_id} but runs on "
                        f"{vm.host.name if vm.host else '?'}",
                        vm=vm.vm_id,
                    ))
        return violations


class AntiColocationInvariant(Constraint):
    """No running instance shares a host with a component it must avoid."""

    name = "anti-colocation"

    def check(self, domain: ProvisioningDomain) -> list[Violation]:
        violations = []
        for a in domain.manifest.placement.anti_colocations:
            avoid_hosts = {
                vm.host for vm in domain.running_vms_of(a.avoid_system_id)
                if vm.host is not None
            }
            for vm in domain.running_vms_of(a.system_id):
                if vm.host in avoid_hosts:
                    violations.append(self.violation(
                        f"{vm.vm_id} ({a.system_id}) shares host "
                        f"{vm.host.name} with avoided {a.avoid_system_id}",
                        vm=vm.vm_id,
                    ))
        return violations


class PerHostCapInvariant(Constraint):
    """No host exceeds a component's per-host instance cap."""

    name = "per-host-cap"

    def check(self, domain: ProvisioningDomain) -> list[Violation]:
        violations = []
        for system_id, cap in domain.manifest.placement.per_host_caps:
            per_host: dict[str, int] = {}
            for vm in domain.running_vms_of(system_id):
                if vm.host is not None:
                    per_host[vm.host.name] = per_host.get(vm.host.name, 0) + 1
            for host_name, count in per_host.items():
                if count > cap:
                    violations.append(self.violation(
                        f"host {host_name} runs {count} instances of "
                        f"{system_id!r}, above cap {cap}",
                        host=host_name, count=count,
                    ))
        return violations


class StartupOrderPostcondition(Constraint):
    """Initial deployment respected the startup section (MDL4).

    For consecutive boot tiers, the *first* instance of every system in the
    later tier must have been submitted no earlier than the first instance
    of every wait-for-guest system in the earlier tier reached RUNNING.
    """

    name = "startup-order"

    def check(self, domain: ProvisioningDomain) -> list[Violation]:
        manifest = domain.manifest
        if not manifest.startup:
            return []
        violations = []
        tiers = manifest.startup_order()
        wait_ids = {e.system_id for e in manifest.startup if e.wait_for_guest}

        def first_vm(system_id: str) -> Optional[VirtualMachine]:
            vms = [vm for vm in domain.vms
                   if vm.descriptor.component_id == system_id]
            return min(vms, key=lambda vm: vm.submitted_at) if vms else None

        for earlier, later in zip(tiers, tiers[1:]):
            gate = [
                vm for vm in (first_vm(s) for s in earlier
                              if s in wait_ids)
                if vm is not None
            ]
            if not gate:
                continue
            if any(vm.running_at is None for vm in gate):
                gate_time = None  # earlier tier never came up
            else:
                gate_time = max(vm.running_at for vm in gate)
            for system_id in later:
                vm = first_vm(system_id)
                if vm is None:
                    continue
                if gate_time is None or vm.submitted_at < gate_time:
                    violations.append(self.violation(
                        f"{system_id!r} was submitted at {vm.submitted_at} "
                        f"before tier {earlier} was fully running "
                        f"(at {gate_time})",
                        system=system_id,
                    ))
        return violations


def deployment_suite() -> "ConstraintSuite":
    """The full §4.2.2 deployment-semantics suite."""
    from .framework import ConstraintSuite

    return ConstraintSuite([
        AssociationInvariant(),
        InstanceBoundsInvariant(),
        ColocationInvariant(),
        AntiColocationInvariant(),
        PerHostCapInvariant(),
        StartupOrderPostcondition(),
    ])
