"""The rule engine (RuleInterpreter) — §5.1's Drools-equivalent.

Implements the §4.2.2 OCL contract precisely:

* ``notify(e: Event)`` — incoming monitoring events are appended to the
  record store (here: latest-value per qualified name plus full journal for
  the validator);
* ``evaluate(qe: QualifiedElement)`` — the latest record's value, else the
  KPI's declared default;
* ``evaluateRules()`` — for every installed rule whose condition evaluates
  ``> 0``, the associated actions are invoked against the VEEM interface.

Evaluation scheduling follows §4.2.2's guidance: "it is for the
implementation to determine when the rules should be checked to fit within
particular timing constraints rather than tying checks to the reception of
any specific monitoring event" — the interpreter runs a periodic evaluation
loop whose period defaults to half the tightest rule time-constraint, so
every enabling event is acted on inside its window. A per-rule cooldown
(defaulting to the time constraint) prevents duplicate responses to one
sustained condition spike.

Incremental evaluation
----------------------

A pass no longer re-evaluates every installed rule. At install time each
rule's KPI reference list is resolved once into a KPI→rules inverted index;
``notify()`` marks the measurement's qualified name *dirty*. A pass then
considers only:

* rules referencing a KPI dirtied since the last pass,
* *hot* rules — those whose last evaluation held (fired, was refused by the
  executor, or errored): a sustained condition must re-fire once its
  cooldown lapses even with no new measurements, and an error must keep
  surfacing in the trace, exactly as a full pass would;
* *periodic* rules — those with window operations, ``system.time.*``
  references, or no KPI references at all: their conditions can change with
  the clock alone, so they are checked on every pass.

A rule whose last evaluation was false and whose KPIs are untouched is
provably still false (conditions are pure functions of the latest-value
store for non-periodic rules), so skipping it cannot change the firing
journal. ``RuleInterpreter(..., incremental=False, compiled=False)``
restores the evaluate-everything tree-walking engine for differential
validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...monitoring.consumers import MeasurementJournal, MeasurementStore
from ...monitoring.distribution import DistributionFramework
from ...monitoring.measurements import Measurement
from ...sim import Environment, Interrupt, TraceLog
from ..manifest.elasticity import ElasticityAction, ElasticityRule
from ..manifest.expressions import Bindings, EvaluationContext, WindowOp

__all__ = ["RuleFiring", "RuleInterpreter"]

#: Executes one action; returns True if the action was actually carried out
#: (False = refused, e.g. scale-down with nothing left to remove).
ActionExecutor = Callable[[ElasticityAction, ElasticityRule], bool]


@dataclass(frozen=True)
class RuleFiring:
    """A record of one rule firing (for audits and the instruments)."""

    time: float
    rule: str
    actions_run: int


@dataclass
class _InstalledRule:
    rule: ElasticityRule
    #: install sequence — candidate sets are re-sorted by this so the
    #: incremental engine fires rules in exactly full-pass order
    seq: int
    #: the rule's KPI reference list, resolved once at install time
    refs: frozenset[str]
    #: compiled condition closure (or the interpreted fallback)
    cond: Callable[[Bindings], float]
    #: re-evaluated every pass: window ops / time KPIs / no refs at all
    periodic: bool
    #: last evaluation held or errored — must be re-checked next pass
    hot: bool = False
    last_fired: Optional[float] = None
    firings: int = 0
    suppressed_evaluations: int = 0


class RuleInterpreter:
    """Per-service ECA engine installed by the Service Lifecycle Manager."""

    def __init__(self, env: Environment, service_id: str, *,
                 executor: ActionExecutor,
                 trace: Optional[TraceLog] = None,
                 eval_period_s: Optional[float] = None,
                 kpi_defaults: Optional[dict[str, float]] = None,
                 incremental: bool = True,
                 compiled: bool = True):
        self.env = env
        self.service_id = service_id
        self.executor = executor
        self.trace = trace if trace is not None else TraceLog(env)
        self.store = MeasurementStore()
        self.journal = MeasurementJournal()
        self._rules: dict[str, _InstalledRule] = {}
        self._defaults = dict(kpi_defaults or {})
        self._explicit_period = eval_period_s
        self._incremental = incremental
        self._compiled = compiled
        self._loop = None
        self._seq = 0
        #: KPI qualified name → installed rules referencing it
        self._kpi_index: dict[str, list[_InstalledRule]] = {}
        #: KPIs with a new measurement since the last evaluation pass
        self._dirty: set[str] = set()
        self._periodic: list[_InstalledRule] = []
        self._hot: dict[str, _InstalledRule] = {}
        self._context = EvaluationContext(latest=self._bindings,
                                          window=self._window)
        #: live network subscriptions, cancelled by detach() on undeploy
        self._subscriptions: list = []
        #: span of the most recent measurement per indexed KPI — the causal
        #: parent for firings that measurement enables
        self._kpi_spans: dict[str, object] = {}
        self.firings: list[RuleFiring] = []
        self.evaluations = 0
        #: cumulative number of per-rule condition evaluations
        self.rules_evaluated = 0
        #: cumulative number of rules skipped by the incremental pass
        self.rules_skipped = 0
        #: breakdown of the most recent pass, for validation and benches
        self.last_pass: dict[str, int] = {}
        #: views registered lazily on the first install() — a service with
        #: no elasticity rules never publishes rule-engine streams
        self._views_registered = False

    def _register_views(self) -> None:
        # The per-pass tallies stay plain ints (the evaluation pass is a
        # microsecond-scale hot path); the registry reads them as views.
        metrics = self.env.metrics
        service_id = self.service_id
        metrics.register_view("core.rules.installed",
                              lambda: len(self._rules), service=service_id)
        metrics.register_view("core.rules.evaluations",
                              lambda: self.evaluations, service=service_id)
        metrics.register_view("core.rules.rules_evaluated",
                              lambda: self.rules_evaluated,
                              service=service_id)
        metrics.register_view("core.rules.rules_skipped",
                              lambda: self.rules_skipped, service=service_id)
        metrics.register_view("core.rules.firings",
                              lambda: len(self.firings), service=service_id)
        self._views_registered = True

    # ------------------------------------------------------------------
    # Installation (§5.1.1 step 3)
    # ------------------------------------------------------------------
    def install(self, rule: ElasticityRule) -> None:
        if rule.name in self._rules:
            raise ValueError(f"rule {rule.name!r} already installed")
        if not self._views_registered:
            self._register_views()
        refs = rule.kpi_references()
        expression = rule.trigger.expression
        cond = expression.compile() if self._compiled else expression.interpret
        periodic = (
            not refs
            or not refs.isdisjoint((self.TIME_NOW, self.TIME_OF_DAY))
            or any(isinstance(node, WindowOp) for node in expression.walk())
        )
        installed = _InstalledRule(rule=rule, seq=self._seq, refs=refs,
                                   cond=cond, periodic=periodic)
        self._seq += 1
        self._rules[rule.name] = installed
        if periodic:
            self._periodic.append(installed)
        for name in refs:
            self._kpi_index.setdefault(name, []).append(installed)
        # A fresh rule has never been evaluated: check it on the next pass.
        self._set_hot(installed, True)
        self._restart_loop()

    def install_all(self, rules) -> None:
        for rule in rules:
            self.install(rule)

    def uninstall(self, name: str) -> None:
        if name not in self._rules:
            raise ValueError(f"no rule {name!r} installed")
        installed = self._rules.pop(name)
        for qname in installed.refs:
            bucket = self._kpi_index.get(qname)
            if bucket is not None:
                bucket.remove(installed)
                if not bucket:
                    del self._kpi_index[qname]
        if installed.periodic:
            self._periodic.remove(installed)
        self._hot.pop(name, None)
        self._restart_loop()

    @property
    def rules(self) -> list[ElasticityRule]:
        return [ir.rule for ir in self._rules.values()]

    @property
    def eval_period_s(self) -> float:
        if self._explicit_period is not None:
            return self._explicit_period
        if not self._rules:
            return 5.0
        return min(ir.rule.trigger.time_constraint_s
                   for ir in self._rules.values()) / 2.0

    # ------------------------------------------------------------------
    # Monitoring input (OCL: RuleInterpreter::notify)
    # ------------------------------------------------------------------
    def notify(self, measurement: Measurement) -> None:
        if measurement.service_id != self.service_id:
            return  # multiple service instances operate independently
        self.store.notify(measurement)
        self.journal.notify(measurement)
        if measurement.qualified_name in self._kpi_index:
            self._dirty.add(measurement.qualified_name)
            # Delivery is synchronous from the publisher's span scope, so the
            # ambient span here *is* the KPI publication — remember it as the
            # causal parent for any firing this measurement enables.
            span = self.env.current_span
            if span is not None:
                self._kpi_spans[measurement.qualified_name] = span

    def subscribe_to(self, network: DistributionFramework):
        subscription = network.subscribe(self.notify,
                                         service_id=self.service_id)
        self._subscriptions.append(subscription)
        return subscription

    def detach(self) -> None:
        """Cancel the interpreter's network subscriptions.

        Called on service undeploy so a torn-down service stops occupying
        the fabric's routing structures (and its route caches are
        invalidated)."""
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions.clear()

    # ------------------------------------------------------------------
    # Evaluation (OCL: RuleInterpreter::evaluateRules / evaluate)
    # ------------------------------------------------------------------
    #: built-in monitorable parameters (§4.2.1: "the current time can be
    #: introduced as a monitorable parameter if necessary") — resolved when
    #: no application measurement shadows them
    TIME_NOW = "system.time.now"
    TIME_OF_DAY = "system.time.timeofday"

    def _bindings(self, name: str) -> Optional[float]:
        """OCL evaluate(QualifiedElement): latest record value or None (the
        KPIRef falls back to its declared default)."""
        value = self.store.value(self.service_id, name)
        if value is not None:
            return float(value)
        if name == self.TIME_NOW:
            return self.env.now
        if name == self.TIME_OF_DAY:
            return self.env.now % 86400.0
        return self._defaults.get(name)

    def _window(self, name: str, window_s: float, op: str) -> Optional[float]:
        """Trailing-window aggregation over the journal, for the §4.2.1
        time-series operations (mean/min/max/count)."""
        since = self.env.now - window_s
        until = self.env.now
        if op == "mean":
            return self.journal.window_mean(self.service_id, name,
                                            since, until)
        if op == "min":
            return self.journal.window_min(self.service_id, name,
                                           since, until)
        if op == "max":
            return self.journal.window_max(self.service_id, name,
                                           since, until)
        if op == "count":
            return float(len(self.journal.window(self.service_id, name,
                                                 since, until)))
        raise ValueError(f"unknown window operation {op!r}")

    def evaluation_context(self) -> EvaluationContext:
        """Window-capable bindings over the live store and journal."""
        return self._context

    def _set_hot(self, installed: _InstalledRule, flag: bool) -> None:
        if flag:
            if not installed.hot:
                installed.hot = True
                self._hot[installed.rule.name] = installed
        elif installed.hot:
            installed.hot = False
            del self._hot[installed.rule.name]

    def _candidates(self) -> list[_InstalledRule]:
        """The rules this pass must evaluate, in install order.

        Cost scales with the number of dirty KPIs plus hot/periodic rules,
        not with the number of installed rules.
        """
        dirty = self._dirty
        selected: dict[int, _InstalledRule] = {}
        for name in dirty:
            for installed in self._kpi_index.get(name, ()):
                selected[installed.seq] = installed
        for installed in self._periodic:
            selected[installed.seq] = installed
        for installed in self._hot.values():
            selected[installed.seq] = installed
        return [selected[seq] for seq in sorted(selected)]

    def evaluate_rules(self) -> list[RuleFiring]:
        """One evaluation pass; incremental unless configured otherwise."""
        self.evaluations += 1
        now = self.env.now
        context = self._context
        if self._incremental:
            work = self._candidates()
        else:
            work = list(self._rules.values())
        dirty_kpis = len(self._dirty)
        self._dirty.clear()
        fired: list[RuleFiring] = []
        evaluated = 0
        cooldown_skipped = 0
        for installed in work:
            rule = installed.rule
            if (installed.last_fired is not None
                    and now < installed.last_fired
                    + rule.effective_cooldown_s):
                # Within cooldown: the full engine skips without evaluating,
                # so hot/cold state is untouched here too.
                cooldown_skipped += 1
                continue
            evaluated += 1
            try:
                holds = installed.cond(context) > 0.0
            except Exception as exc:
                self.trace.emit("rule-engine", "rule.error",
                                rule=rule.name, service=self.service_id,
                                error=str(exc))
                # The full engine re-raises (and re-traces) the error every
                # pass; keep the rule hot so the incremental one does too.
                self._set_hot(installed, True)
                continue
            if not holds:
                self._set_hot(installed, False)
                continue
            # Held: a sustained condition re-fires after its cooldown even
            # with no new measurements, so it must stay on the check list.
            self._set_hot(installed, True)
            # The firing span parents under the most recent measurement that
            # the rule references — the publication that enabled the
            # condition — making "which KPI caused this adjustment, and did
            # it land inside the time constraint?" a tree walk (§4.2.3).
            enabling = None
            for ref in installed.refs:
                span = self._kpi_spans.get(ref)
                if span is not None and (enabling is None
                                         or span.start >= enabling.start):
                    enabling = span
            firing_span = self.trace.span(
                "rule-engine", "rule.firing", parent=enabling,
                rule=rule.name, service=self.service_id,
                time_constraint_s=rule.trigger.time_constraint_s)
            actions_run = 0
            with self.trace.activate(firing_span):
                for action in rule.actions:
                    if self.executor(action, rule):
                        actions_run += 1
                        self.trace.emit(
                            "rule-engine", "elasticity.action",
                            rule=rule.name, service=self.service_id,
                            operation=action.operation.value,
                            component_ref=action.component_ref,
                        )
            if actions_run:
                installed.last_fired = now
                installed.firings += 1
                firing = RuleFiring(now, rule.name, actions_run)
                self.firings.append(firing)
                fired.append(firing)
                self.trace.close_span(firing_span, "fired",
                                      actions_run=actions_run)
            else:
                installed.suppressed_evaluations += 1
                self.trace.close_span(firing_span, "suppressed")
        self.rules_evaluated += evaluated
        self.rules_skipped += len(self._rules) - len(work)
        self.last_pass = {
            "installed": len(self._rules),
            "candidates": len(work),
            "evaluated": evaluated,
            "cooldown_skipped": cooldown_skipped,
            "skipped": len(self._rules) - len(work),
            "dirty_kpis": dirty_kpis,
        }
        return fired

    # ------------------------------------------------------------------
    # Periodic evaluation loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._loop is None or not self._loop.is_alive:
            self._loop = self.env.process(
                self._evaluation_loop(),
                name=f"rule-engine:{self.service_id}",
            )

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt("engine stopped")
        self._loop = None

    def _restart_loop(self) -> None:
        # Period may have changed with the rule set; a running loop picks
        # the new period up on its next iteration, so nothing to do.
        pass

    def _evaluation_loop(self):
        try:
            while True:
                yield self.env.timeout(self.eval_period_s)
                self.evaluate_rules()
        except Interrupt:
            pass

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "firings": ir.firings,
                "suppressed": ir.suppressed_evaluations,
                "last_fired": ir.last_fired,
                "periodic": ir.periodic,
                "hot": ir.hot,
            }
            for name, ir in self._rules.items()
        }
