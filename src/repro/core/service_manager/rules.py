"""The rule engine (RuleInterpreter) — §5.1's Drools-equivalent.

Implements the §4.2.2 OCL contract precisely:

* ``notify(e: Event)`` — incoming monitoring events are appended to the
  record store (here: latest-value per qualified name plus full journal for
  the validator);
* ``evaluate(qe: QualifiedElement)`` — the latest record's value, else the
  KPI's declared default;
* ``evaluateRules()`` — for every installed rule whose condition evaluates
  ``> 0``, the associated actions are invoked against the VEEM interface.

Evaluation scheduling follows §4.2.2's guidance: "it is for the
implementation to determine when the rules should be checked to fit within
particular timing constraints rather than tying checks to the reception of
any specific monitoring event" — the interpreter runs a periodic evaluation
loop whose period defaults to half the tightest rule time-constraint, so
every enabling event is acted on inside its window. A per-rule cooldown
(defaulting to the time constraint) prevents duplicate responses to one
sustained condition spike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ...monitoring.consumers import MeasurementJournal, MeasurementStore
from ...monitoring.distribution import DistributionFramework
from ...monitoring.measurements import Measurement
from ...sim import Environment, Interrupt, TraceLog
from ..manifest.elasticity import ElasticityAction, ElasticityRule
from ..manifest.expressions import EvaluationContext

__all__ = ["RuleFiring", "RuleInterpreter"]

#: Executes one action; returns True if the action was actually carried out
#: (False = refused, e.g. scale-down with nothing left to remove).
ActionExecutor = Callable[[ElasticityAction, ElasticityRule], bool]


@dataclass(frozen=True)
class RuleFiring:
    """A record of one rule firing (for audits and the instruments)."""

    time: float
    rule: str
    actions_run: int


@dataclass
class _InstalledRule:
    rule: ElasticityRule
    last_fired: Optional[float] = None
    firings: int = 0
    suppressed_evaluations: int = 0


class RuleInterpreter:
    """Per-service ECA engine installed by the Service Lifecycle Manager."""

    def __init__(self, env: Environment, service_id: str, *,
                 executor: ActionExecutor,
                 trace: Optional[TraceLog] = None,
                 eval_period_s: Optional[float] = None,
                 kpi_defaults: Optional[dict[str, float]] = None):
        self.env = env
        self.service_id = service_id
        self.executor = executor
        self.trace = trace if trace is not None else TraceLog(env)
        self.store = MeasurementStore()
        self.journal = MeasurementJournal()
        self._rules: dict[str, _InstalledRule] = {}
        self._defaults = dict(kpi_defaults or {})
        self._explicit_period = eval_period_s
        self._loop = None
        self.firings: list[RuleFiring] = []
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Installation (§5.1.1 step 3)
    # ------------------------------------------------------------------
    def install(self, rule: ElasticityRule) -> None:
        if rule.name in self._rules:
            raise ValueError(f"rule {rule.name!r} already installed")
        self._rules[rule.name] = _InstalledRule(rule)
        self._restart_loop()

    def install_all(self, rules) -> None:
        for rule in rules:
            self.install(rule)

    def uninstall(self, name: str) -> None:
        if name not in self._rules:
            raise ValueError(f"no rule {name!r} installed")
        del self._rules[name]
        self._restart_loop()

    @property
    def rules(self) -> list[ElasticityRule]:
        return [ir.rule for ir in self._rules.values()]

    @property
    def eval_period_s(self) -> float:
        if self._explicit_period is not None:
            return self._explicit_period
        if not self._rules:
            return 5.0
        return min(ir.rule.trigger.time_constraint_s
                   for ir in self._rules.values()) / 2.0

    # ------------------------------------------------------------------
    # Monitoring input (OCL: RuleInterpreter::notify)
    # ------------------------------------------------------------------
    def notify(self, measurement: Measurement) -> None:
        if measurement.service_id != self.service_id:
            return  # multiple service instances operate independently
        self.store.notify(measurement)
        self.journal.notify(measurement)

    def subscribe_to(self, network: DistributionFramework) -> None:
        network.subscribe(self.notify, service_id=self.service_id)

    # ------------------------------------------------------------------
    # Evaluation (OCL: RuleInterpreter::evaluateRules / evaluate)
    # ------------------------------------------------------------------
    #: built-in monitorable parameters (§4.2.1: "the current time can be
    #: introduced as a monitorable parameter if necessary") — resolved when
    #: no application measurement shadows them
    TIME_NOW = "system.time.now"
    TIME_OF_DAY = "system.time.timeofday"

    def _bindings(self, name: str) -> Optional[float]:
        """OCL evaluate(QualifiedElement): latest record value or None (the
        KPIRef falls back to its declared default)."""
        value = self.store.value(self.service_id, name)
        if value is not None:
            return float(value)
        if name == self.TIME_NOW:
            return self.env.now
        if name == self.TIME_OF_DAY:
            return self.env.now % 86400.0
        return self._defaults.get(name)

    def _window(self, name: str, window_s: float, op: str) -> Optional[float]:
        """Trailing-window aggregation over the journal, for the §4.2.1
        time-series operations (mean/min/max/count)."""
        since = self.env.now - window_s
        until = self.env.now
        if op == "mean":
            return self.journal.window_mean(self.service_id, name,
                                            since, until)
        if op == "min":
            return self.journal.window_min(self.service_id, name,
                                           since, until)
        if op == "max":
            return self.journal.window_max(self.service_id, name,
                                           since, until)
        if op == "count":
            return float(len(self.journal.window(self.service_id, name,
                                                 since, until)))
        raise ValueError(f"unknown window operation {op!r}")

    def evaluation_context(self) -> EvaluationContext:
        """Window-capable bindings over the live store and journal."""
        return EvaluationContext(latest=self._bindings, window=self._window)

    def evaluate_rules(self) -> list[RuleFiring]:
        """One evaluation pass over every installed rule."""
        self.evaluations += 1
        fired: list[RuleFiring] = []
        for installed in list(self._rules.values()):
            rule = installed.rule
            if (installed.last_fired is not None
                    and self.env.now < installed.last_fired
                    + rule.effective_cooldown_s):
                continue
            try:
                holds = rule.trigger.expression.holds(
                    self.evaluation_context())
            except Exception as exc:
                self.trace.emit("rule-engine", "rule.error",
                                rule=rule.name, service=self.service_id,
                                error=str(exc))
                continue
            if not holds:
                continue
            actions_run = 0
            for action in rule.actions:
                if self.executor(action, rule):
                    actions_run += 1
                    self.trace.emit(
                        "rule-engine", "elasticity.action",
                        rule=rule.name, service=self.service_id,
                        operation=action.operation.value,
                        component_ref=action.component_ref,
                    )
            if actions_run:
                installed.last_fired = self.env.now
                installed.firings += 1
                firing = RuleFiring(self.env.now, rule.name, actions_run)
                self.firings.append(firing)
                fired.append(firing)
            else:
                installed.suppressed_evaluations += 1
        return fired

    # ------------------------------------------------------------------
    # Periodic evaluation loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._loop is None or not self._loop.is_alive:
            self._loop = self.env.process(
                self._evaluation_loop(),
                name=f"rule-engine:{self.service_id}",
            )

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt("engine stopped")
        self._loop = None

    def _restart_loop(self) -> None:
        # Period may have changed with the rule set; a running loop picks
        # the new period up on its next iteration, so nothing to do.
        pass

    def _evaluation_loop(self):
        try:
            while True:
                yield self.env.timeout(self.eval_period_s)
                self.evaluate_rules()
        except Interrupt:
            pass

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "firings": ir.firings,
                "suppressed": ir.suppressed_evaluations,
                "last_fired": ir.last_fired,
            }
            for name, ir in self._rules.items()
        }
