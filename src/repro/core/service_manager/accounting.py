"""Usage accounting for deployed services.

§2 lists "accounting and billing of service usage" among the Service
Manager's tasks; the evaluation's cost metric is exactly what this module
computes: "we can at the very least rely upon resource usage as an indicator
of cost" (§6.1.3), reported in Table 3 as the time-averaged number of
execution nodes over the run and until complete shutdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...sim import Environment, TimeSeries

__all__ = ["UsageRecord", "ServiceAccountant"]


@dataclass(frozen=True)
class UsageRecord:
    """Aggregated usage for one component over a window."""

    component: str
    window_start: float
    window_end: float
    instance_seconds: float
    mean_instances: float
    peak_instances: float


class ServiceAccountant:
    """Tracks per-component instance counts as step-function time series."""

    def __init__(self, env: Environment, service_id: str, *,
                 tenant: Optional[str] = None):
        self.env = env
        self.service_id = service_id
        #: owning tenant for multi-tenant attribution (None = unattributed,
        #: the single-tenant seed behaviour)
        self.tenant = tenant
        #: all series are anchored here so that usage integrals over windows
        #: preceding a component's first deployment correctly read zero —
        #: a series created lazily *at* the first deployment would have its
        #: start point overwritten by the same-instant increment
        self._created_at = env.now
        self._series: dict[str, TimeSeries] = {}
        self.deployed_total: dict[str, int] = {}
        self.released_total: dict[str, int] = {}

    def _component_series(self, component: str) -> TimeSeries:
        if component not in self._series:
            self._series[component] = TimeSeries(
                f"{self.service_id}:{component}", initial=0,
                start=self._created_at)
        return self._series[component]

    # -- event hooks (called by the lifecycle manager) ------------------------
    def instance_deployed(self, component: str) -> None:
        self._component_series(component).increment(self.env.now, +1)
        self.deployed_total[component] = \
            self.deployed_total.get(component, 0) + 1

    def instance_released(self, component: str) -> None:
        series = self._component_series(component)
        if series.current <= 0:
            raise ValueError(
                f"{component}: released more instances than deployed"
            )
        series.increment(self.env.now, -1)
        self.released_total[component] = \
            self.released_total.get(component, 0) + 1

    # -- queries -----------------------------------------------------------------
    def current_instances(self, component: str) -> int:
        if component not in self._series:
            return 0
        return int(self._series[component].current)

    def series(self, component: str) -> Optional[TimeSeries]:
        return self._series.get(component)

    def usage(self, component: str, start: float,
              end: Optional[float] = None) -> UsageRecord:
        """Time-averaged usage over [start, end] (end defaults to now)."""
        end = self.env.now if end is None else end
        if component not in self._series:
            return UsageRecord(component, start, end, 0.0, 0.0, 0.0)
        series = self._series[component]
        instance_seconds = series.integral(start, end)
        mean = instance_seconds / (end - start) if end > start else 0.0
        peak = series.maximum(start, end) if end >= start else 0.0
        return UsageRecord(
            component=component, window_start=start, window_end=end,
            instance_seconds=instance_seconds, mean_instances=mean,
            peak_instances=peak,
        )

    def usage_all(self, start: float,
                  end: Optional[float] = None) -> dict[str, UsageRecord]:
        """Per-component usage over one window (tenant reporting helper)."""
        return {c: self.usage(c, start, end) for c in self.components()}

    def components(self) -> list[str]:
        return sorted(self._series)
