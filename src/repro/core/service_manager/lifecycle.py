"""The Service Lifecycle Manager.

§5.1: "This component controls the service lifecycle and is in charge of all
service management operations, including initial deployment, runtime scaling
and service termination. The Service Lifecycle Manager orchestrates all the
other Service Manager components and interfaces with the VEEM in order to
actually implement the management operations, e.g. sending individual
deployment descriptors to create new VEEs."

Initial deployment follows the 7-step §5.1.1 workflow; runtime scaling the
§5.1.2 elasticity workflow. Components may have an application-level
:class:`ComponentDriver` attached (e.g. the Condor cluster glue, which drains
nodes before stopping their VMs); otherwise the default driver submits and
shuts down VEEs directly.
"""

from __future__ import annotations

import abc
import re
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Optional

from ...cloud.veem import VEEM
from ...cloud.vm import DeploymentDescriptor, VirtualMachine, VMState
from ...sim import Environment, TraceLog
from ..constraints.deployment import ProvisioningDomain
from ..manifest.model import VirtualSystem
from .accounting import ServiceAccountant
from .parser import ParsedService

__all__ = ["ComponentDriver", "DefaultDriver", "ManagedComponent",
           "ServiceLifecycleManager", "ScaleError"]


class ScaleError(Exception):
    """A scaling request that cannot be honoured (bounds, no instances)."""


class ComponentDriver(abc.ABC):
    """Application-level deploy/release mechanics for one component.

    The lifecycle manager enforces *policy* (instance bounds, accounting,
    constraint checks); the driver supplies *mechanics* — what starting and
    stopping an instance actually involves at the application layer.
    """

    @abc.abstractmethod
    def deploy(self, descriptor: DeploymentDescriptor) -> VirtualMachine:
        """Start one instance from the descriptor; return its VM."""

    @abc.abstractmethod
    def release(self) -> Optional[VirtualMachine]:
        """Begin removing one instance; return the VM that will stop, or
        ``None`` if nothing can be removed right now."""


class DefaultDriver(ComponentDriver):
    """Plain VEEM submit/shutdown, newest instance released first."""

    def __init__(self, env: Environment, veem: VEEM):
        self.env = env
        self.veem = veem
        self._vms: list[VirtualMachine] = []

    def deploy(self, descriptor: DeploymentDescriptor) -> VirtualMachine:
        vm = self.veem.submit(descriptor)
        self._vms.append(vm)
        return vm

    def release(self) -> Optional[VirtualMachine]:
        vm = next((v for v in reversed(self._vms) if v.is_active), None)
        if vm is None:
            return None
        self._vms.remove(vm)
        self.env.process(self._stop(vm), name=f"release:{vm.vm_id}")
        return vm

    def _stop(self, vm: VirtualMachine):
        if not (vm.on_running.processed or vm.on_stopped.processed):
            # A VM that fails while provisioning never fires on_running;
            # waiting on it alone would leave this process pending forever.
            yield self.env.any_of([vm.on_running, vm.on_stopped])
        if vm.state is VMState.RUNNING:
            yield self.veem.shutdown(vm)


@dataclass
class ManagedComponent:
    """Lifecycle state for one virtual system of a service."""

    system: VirtualSystem
    driver: ComponentDriver
    vms: list[VirtualMachine] = field(default_factory=list)
    next_instance: int = 0
    #: vm_ids released but not yet stopped — they no longer count toward the
    #: component's effective size, so back-to-back scale-downs cannot
    #: undershoot the minimum while shutdowns are still in flight
    releasing: set = field(default_factory=set)

    @property
    def active_count(self) -> int:
        return sum(1 for vm in self.vms if vm.is_active)

    @property
    def effective_count(self) -> int:
        """Active instances minus those already being released."""
        return sum(1 for vm in self.vms
                   if vm.is_active and vm.vm_id not in self.releasing)

    @property
    def running_count(self) -> int:
        return sum(1 for vm in self.vms if vm.state is VMState.RUNNING)


_PLACEHOLDER_RE = re.compile(r"\$\{ip\.([A-Za-z0-9_\-]+)\.([A-Za-z0-9_\-]+)\}")


class ServiceLifecycleManager:
    """Deploys, scales and terminates one service on a VEEM."""

    def __init__(self, env: Environment, parsed: ParsedService, veem: VEEM, *,
                 trace: Optional[TraceLog] = None,
                 auto_heal: bool = True,
                 tenant: Optional[str] = None,
                 placement_plan: Optional[dict] = None):
        self.env = env
        self.parsed = parsed
        self.veem = veem
        self.trace = trace if trace is not None else veem.trace
        #: redeploy instances that FAIL while the component would otherwise
        #: drop below its minimum — "replicate components ... as demand grows
        #: or components become unavailable" (§1)
        self.auto_heal = auto_heal
        self._terminating = False
        #: solver-computed host pins keyed ``(system_id, instance_index)``,
        #: consumed (popped) as the matching instances deploy — scale-ups
        #: beyond the planned set place normally
        self.pin_plan: dict = dict(placement_plan or {})
        #: owning tenant, threaded into accounting so multi-tenant usage can
        #: be attributed and billed per tenant
        self.tenant = tenant
        self.accountant = ServiceAccountant(env, parsed.service_id,
                                            tenant=tenant)
        self.components: dict[str, ManagedComponent] = {}
        self.descriptors: list[DeploymentDescriptor] = []
        self.deployed_at: Optional[float] = None
        self.terminated_at: Optional[float] = None
        #: ``service.deploy`` span (set by the ServiceManager); activated
        #: around the synchronous instance submissions so the VEEs' deploy
        #: spans nest under the service, and closed when step 7 completes
        self.span = None
        #: ``service.undeploy`` span, set by ServiceManager.undeploy
        self.term_span = None
        #: invoked with each VM that reaches RUNNING (apps bind guests here)
        self.on_instance_running: list[Callable[[str, VirtualMachine], None]] = []
        env.metrics.register_view(
            "core.lifecycle.active_instances",
            lambda: sum(c.active_count for c in self.components.values()),
            service=parsed.service_id)
        # Scaling/healing counters are created on first use: most services
        # in a churn-heavy run never scale, and deploy/terminate is a
        # control-plane hot path.
        self._m_scale_ups = None
        self._m_scale_downs = None
        self._m_heals = None

    def _counter(self, attr: str, name: str):
        counter = getattr(self, attr)
        if counter is None:
            counter = self.env.metrics.counter(
                name, service=self.parsed.service_id)
            setattr(self, attr, counter)
        return counter

    def _activated(self, span):
        """Ambient-scope context for a synchronous section, or a no-op."""
        if span is None:
            return nullcontext()
        return self.trace.activate(span)

    # ------------------------------------------------------------------
    # Driver registration
    # ------------------------------------------------------------------
    def use_driver(self, system_id: str, driver: ComponentDriver) -> None:
        """Attach an application driver (call before deploy_service)."""
        system = self.parsed.manifest.system(system_id)
        self.components[system_id] = ManagedComponent(system, driver)

    def _component(self, system_id: str) -> ManagedComponent:
        if system_id not in self.components:
            system = self.parsed.manifest.system(system_id)
            self.components[system_id] = ManagedComponent(
                system, DefaultDriver(self.env, self.veem))
        return self.components[system_id]

    # ------------------------------------------------------------------
    # Initial deployment (§5.1.1 steps 4–7)
    # ------------------------------------------------------------------
    def deploy_service(self):
        """Process: bring up every component per the startup section.

        The ``service.deploy`` span is *activated* only around the
        synchronous sections (never across a ``yield`` — other processes
        interleave there), so the VEE submissions of every tier nest under
        the service span without leaking scope into unrelated processes.
        """
        manifest = self.parsed.manifest
        with self._activated(self.span):
            self.trace.emit("lifecycle", "service.deploy.start",
                            service=self.parsed.service_id)
            # Step 4: set up images on the internal server.
            self._register_images()
            # Install placement constraints before any submission.
            for constraint in self.parsed.placement_constraints():
                if constraint not in self.veem.placer.constraints:
                    self.veem.placer.add_constraint(constraint)

        # Steps 5–7, tier by tier.
        for tier in manifest.startup_order():
            gating: list[VirtualMachine] = []
            gated_systems: list[str] = []
            with self._activated(self.span):
                for system_id in tier:
                    component = self._component(system_id)
                    entry = next(
                        (e for e in manifest.startup
                         if e.system_id == system_id), None)
                    gated = entry is None or entry.wait_for_guest
                    if gated:
                        gated_systems.append(system_id)
                    for _ in range(component.system.instances.initial):
                        vm = self._deploy_instance(component)
                        if gated:
                            gating.append(vm)
            # Tier barrier: every gating instance must *settle* — reach
            # RUNNING, or die trying (STOPPED/FAILED). Waiting on
            # ``on_running`` alone would wedge the deployment forever when a
            # host crash or injected fault kills an instance mid-provisioning
            # (``on_running`` never fires for a FAILED VM), leaving the
            # service's ``deployment`` event unfired and any control-plane
            # request stuck in DEPLOYING. Instances that died and were healed
            # are swept up on the next pass, so the deployment event still
            # means "everything this deployment caused has settled".
            seen: set[str] = set()
            while gating:
                waits = []
                for vm in gating:
                    seen.add(vm.vm_id)
                    if not (vm.on_running.processed
                            or vm.on_stopped.processed):
                        waits.append(self.env.any_of([vm.on_running,
                                                      vm.on_stopped]))
                if waits:
                    yield self.env.all_of(waits)
                gating = [vm for system_id in gated_systems
                          for vm in self._component(system_id).vms
                          if vm.vm_id not in seen and vm.is_active
                          and vm.state is not VMState.RUNNING]
        self.deployed_at = self.env.now
        self.trace.emit_in(self.span, "lifecycle", "service.deploy.done",
                           service=self.parsed.service_id,
                           duration=self.env.now)
        if self.span is not None and not self.span.closed:
            self.trace.close_span(
                self.span, "ok",
                deploy_duration_s=self.env.now - self.span.start)

    def _register_images(self) -> None:
        repo = self.veem.repository
        for ref in self.parsed.manifest.references:
            try:
                repo.resolve_href(ref.href)
            except Exception:
                repo.add(ref.file_id, ref.size_mb, href=ref.href)

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------
    def _deploy_instance(self, component: ManagedComponent) -> VirtualMachine:
        descriptor = self.parsed.descriptor_for(
            component.system, component.next_instance)
        pin = self.pin_plan.pop(
            (component.system.system_id, component.next_instance), None)
        if pin is not None:
            descriptor.placement["host"] = pin
        component.next_instance += 1
        descriptor.customisation = self._resolve_customisation(
            descriptor.customisation)
        self.descriptors.append(descriptor)
        vm = component.driver.deploy(descriptor)
        component.vms.append(vm)
        self.accountant.instance_deployed(component.system.system_id)
        self.env.process(self._watch_instance(component, vm),
                         name=f"watch:{vm.vm_id}")
        self.trace.emit("lifecycle", "instance.deploy",
                        service=self.parsed.service_id,
                        component=component.system.system_id, vm=vm.vm_id)
        return vm

    def _watch_instance(self, component: ManagedComponent,
                        vm: VirtualMachine):
        if not vm.on_running.processed:
            # A VM killed while provisioning stops without ever running.
            yield self.env.any_of([vm.on_running, vm.on_stopped])
        if vm.state is VMState.RUNNING:
            for hook in self.on_instance_running:
                hook(component.system.system_id, vm)
        if not vm.on_stopped.processed:
            yield vm.on_stopped
        was_releasing = vm.vm_id in component.releasing
        component.releasing.discard(vm.vm_id)
        self.accountant.instance_released(component.system.system_id)
        if (self.auto_heal and not self._terminating and not was_releasing
                and vm.state is VMState.FAILED):
            self._heal(component, vm)

    def _resolve_customisation(self, customisation: dict) -> dict:
        """MDL6: substitute ``${ip.<network>.<system>}`` placeholders with
        the address of the referenced system's first running instance."""
        resolved = {}
        for key, value in customisation.items():
            if isinstance(value, str):
                value = _PLACEHOLDER_RE.sub(self._lookup_ip, value)
            resolved[key] = value
        return resolved

    def _lookup_ip(self, match: re.Match) -> str:
        network, system_id = match.groups()
        component = self.components.get(system_id)
        if component is not None:
            for vm in component.vms:
                if vm.is_active and network in vm.ip_addresses:
                    return vm.ip_addresses[network]
        return match.group(0)  # unresolved: leave the placeholder visible

    def _heal(self, component: ManagedComponent, dead: VirtualMachine) -> None:
        """Replace a failed instance if the component fell below its floor.

        The floor is the instance minimum, but never less than one for a
        component that was deliberately running (elastic arrays scaled to
        zero stay at zero — the elasticity rules own that decision).
        """
        bounds = component.system.instances
        floor = max(bounds.minimum, 1 if bounds.minimum >= 1 else 0)
        if component.effective_count >= floor:
            return
        try:
            replacement = self._deploy_instance(component)
        except Exception as exc:
            self.trace.emit("lifecycle", "instance.heal.failed",
                            service=self.parsed.service_id,
                            component=component.system.system_id,
                            error=str(exc))
            return
        self._counter('_m_heals', 'core.lifecycle.heals').inc()
        self.trace.emit("lifecycle", "instance.heal",
                        service=self.parsed.service_id,
                        component=component.system.system_id,
                        failed_vm=dead.vm_id, replacement=replacement.vm_id)

    def ensure_floor(self) -> int:
        """Redeploy every component currently below its heal floor.

        The failure-time heal path (:meth:`_heal`) runs once, when the
        instance dies; if the whole site is down at that moment the heal
        fails for capacity and nothing retries it. This is the recovery
        hook: after a host or site comes back, re-floor the service.
        Returns how many replacement instances were deployed.
        """
        if self._terminating or not self.auto_heal:
            return 0
        deployed = 0
        for component in self.components.values():
            bounds = component.system.instances
            floor = max(bounds.minimum, 1 if bounds.minimum >= 1 else 0)
            while component.effective_count < floor:
                try:
                    replacement = self._deploy_instance(component)
                except Exception as exc:
                    self.trace.emit("lifecycle", "instance.heal.failed",
                                    service=self.parsed.service_id,
                                    component=component.system.system_id,
                                    error=str(exc))
                    break
                deployed += 1
                self._counter('_m_heals', 'core.lifecycle.heals').inc()
                self.trace.emit("lifecycle", "instance.heal",
                                service=self.parsed.service_id,
                                component=component.system.system_id,
                                failed_vm=None,
                                replacement=replacement.vm_id)
        return deployed

    # ------------------------------------------------------------------
    # Runtime scaling (§5.1.2)
    # ------------------------------------------------------------------
    def scale_up(self, system_id: str) -> VirtualMachine:
        component = self._component(system_id)
        bounds = component.system.instances
        if component.effective_count >= bounds.maximum:
            raise ScaleError(
                f"{system_id}: already at maximum {bounds.maximum} instances"
            )
        if not component.system.replicable and component.effective_count >= 1:
            raise ScaleError(f"{system_id}: component is not replicable")
        vm = self._deploy_instance(component)
        self._counter('_m_scale_ups', 'core.lifecycle.scale_ups').inc()
        self.trace.emit("lifecycle", "scale.up",
                        service=self.parsed.service_id,
                        component=system_id, vm=vm.vm_id,
                        instances=component.active_count)
        return vm

    def scale_down(self, system_id: str) -> VirtualMachine:
        component = self._component(system_id)
        bounds = component.system.instances
        if component.effective_count <= bounds.minimum:
            raise ScaleError(
                f"{system_id}: already at minimum {bounds.minimum} instances"
            )
        vm = component.driver.release()
        if vm is None:
            raise ScaleError(f"{system_id}: no releasable instance")
        component.releasing.add(vm.vm_id)
        self._counter('_m_scale_downs', 'core.lifecycle.scale_downs').inc()
        self.trace.emit("lifecycle", "scale.down",
                        service=self.parsed.service_id,
                        component=system_id, vm=vm.vm_id,
                        instances=component.active_count)
        return vm

    def reconfigure(self, system_id: str, *, cpu: Optional[float] = None,
                    memory_mb: Optional[float] = None) -> int:
        """Resize every running instance of a component; returns how many."""
        component = self._component(system_id)
        count = 0
        for vm in component.vms:
            if vm.state is VMState.RUNNING:
                self.veem.reconfigure(vm, cpu=cpu, memory_mb=memory_mb)
                count += 1
        return count

    def migrate_for_balance(self, system_id: str) -> Optional[VirtualMachine]:
        """Move one running instance to the emptiest other host (the
        ``migrateVM`` action's single-site interpretation)."""
        component = self._component(system_id)
        vm = next((v for v in component.vms
                   if v.state is VMState.RUNNING), None)
        if vm is None:
            return None
        candidates = [
            h for h in self.veem.hosts
            if h is not vm.host
            and h.fits(vm.descriptor.cpu, vm.descriptor.memory_mb)
        ]
        if not candidates:
            return None
        target = max(candidates, key=lambda h: h.memory_free)
        self.veem.migrate(vm, target)
        return vm

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def terminate_service(self):
        """Process: release every instance, reverse startup order."""
        self._terminating = True
        self.trace.emit_in(self.term_span, "lifecycle",
                           "service.terminate.start",
                           service=self.parsed.service_id)
        for tier in reversed(self.parsed.manifest.startup_order()):
            stops = []
            with self._activated(self.term_span):
                for system_id in tier:
                    component = self.components.get(system_id)
                    if component is None:
                        continue
                    while component.active_count > 0:
                        vm = component.driver.release()
                        if vm is None:
                            break
                        stops.append(vm.on_stopped)
            if stops:
                yield self.env.all_of(stops)
        self.terminated_at = self.env.now
        self.trace.emit_in(self.term_span, "lifecycle",
                           "service.terminate.done",
                           service=self.parsed.service_id)
        if self.term_span is not None and not self.term_span.closed:
            self.trace.close_span(self.term_span, "ok")
        # A deploy span still open here means the service was torn down
        # mid-deployment; close it so no span outlives its service.
        if self.span is not None and not self.span.closed:
            self.trace.close_span(self.span, "aborted")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def instance_count(self, system_id: str) -> int:
        component = self.components.get(system_id)
        return component.active_count if component else 0

    def all_vms(self) -> list[VirtualMachine]:
        return [vm for c in self.components.values() for vm in c.vms]

    def provisioning_domain(self) -> ProvisioningDomain:
        """The (manifest, state) pair the §4.2.2 constraints evaluate over."""
        return ProvisioningDomain(
            manifest=self.parsed.manifest,
            service_id=self.parsed.service_id,
            descriptors=list(self.descriptors),
            vms=self.all_vms(),
        )
