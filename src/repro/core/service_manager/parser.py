"""The Manifest Parser component of the Service Manager.

§5.1: "The parser handles and processes the service specification (in OVF)
provided by the Service Provider, extracting from it a suitable service
lifecycle that meets the provider requirements" — i.e. it turns the manifest
into the internal representation the other Service Manager components
consume: validated abstract syntax, per-system descriptor *templates*, the
placement constraint set, and the installed-rule set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ...cloud.placement import (
    Affinity,
    AntiAffinity,
    ComponentCap,
    PlacementConstraint,
)
from ...cloud.vm import DeploymentDescriptor
from ..manifest.elasticity import ElasticityRule
from ..manifest.model import ServiceManifest, VirtualSystem
from ..manifest.ovf_xml import manifest_from_xml
from ..manifest.validation import ValidationIssue, ensure_valid

__all__ = ["ParsedService", "ManifestParser"]


@dataclass
class ParsedService:
    """Internal representation of one submitted service (§5.1.1 step 1)."""

    service_id: str
    manifest: ServiceManifest
    warnings: list[ValidationIssue] = field(default_factory=list)

    def descriptor_for(self, system: VirtualSystem,
                       instance: int) -> DeploymentDescriptor:
        """Generate the deployment descriptor for one instance (§4.2.2:
        descriptor fields are *derived from* the manifest — the Association
        invariant then re-checks the derivation independently)."""
        manifest = self.manifest
        name = (system.system_id if instance == 0
                else f"{system.system_id}-{instance}")
        return DeploymentDescriptor(
            name=name,
            memory_mb=system.hardware.memory_mb,
            cpu=system.hardware.cpu,
            disk_source=manifest.image_href(system),
            networks=tuple(system.network_refs),
            customisation=dict(system.customisation_dict()),
            service_id=self.service_id,
            component_id=system.system_id,
        )

    def placement_constraints(self) -> list[PlacementConstraint]:
        """MDL5 manifest constraints → VEEM placer constraints."""
        constraints: list[PlacementConstraint] = []
        placement = self.manifest.placement
        for c in placement.colocations:
            constraints.append(Affinity(c.system_id, c.with_system_id))
        for a in placement.anti_colocations:
            constraints.append(
                AntiAffinity(a.system_id, a.avoid_system_id))
        for system_id, cap in placement.per_host_caps:
            constraints.append(ComponentCap(system_id, cap))
        return constraints

    def rules(self) -> tuple[ElasticityRule, ...]:
        return self.manifest.elasticity_rules

    def resolve_action_target(self, component_ref: str) -> Optional[str]:
        """Action component ref → virtual-system id (``...<id>.ref`` style
        accepted, as in the §6.1.2 manifest)."""
        ids = set(self.manifest.system_ids())
        if component_ref in ids:
            return component_ref
        parts = component_ref.split(".")
        if len(parts) >= 2 and parts[-1] == "ref" and parts[-2] in ids:
            return parts[-2]
        return None


class ManifestParser:
    """Parses and validates submissions; assigns service identifiers."""

    def __init__(self) -> None:
        self._seq = 0

    def parse(self, manifest: Union[str, ServiceManifest],
              *, service_id: Optional[str] = None) -> ParsedService:
        """Accept concrete XML or an abstract-syntax manifest.

        Validation errors reject the submission
        (:class:`~repro.core.manifest.ManifestValidationError`); warnings are
        attached to the parsed service for the provider to review.
        """
        if isinstance(manifest, str):
            manifest = manifest_from_xml(manifest)
        warnings = ensure_valid(manifest)
        self._seq += 1
        return ParsedService(
            service_id=service_id or f"svc-{manifest.service_name}-{self._seq}",
            manifest=manifest,
            warnings=warnings,
        )
