"""Billing of service usage.

§2: the Service Manager "performs other service management tasks, such as
accounting and billing of service usage". §6.1.3 notes that "the actual
financial costs will be dependent on the business models employed by Cloud
infrastructure providers" — so the business model is pluggable: a
:class:`PriceSchedule` maps components to instance-hour rates, and an
:class:`Invoice` turns accounted usage (plus optional SLA credits) into a
statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sla import SLAMonitor
from .accounting import ServiceAccountant

__all__ = ["PriceSchedule", "InvoiceLine", "Invoice", "BillingService"]


@dataclass(frozen=True)
class PriceSchedule:
    """Instance-hour rates per component (currency units per hour).

    ``rates`` maps component ids to hourly prices; components not listed pay
    ``default_rate``. A one-off ``deployment_fee`` may be charged per
    instance deployment (covers image replication and boot overheads some
    providers bill separately).
    """

    rates: tuple[tuple[str, float], ...] = ()
    default_rate: float = 0.10
    deployment_fee: float = 0.0
    currency: str = "EUR"

    def __post_init__(self) -> None:
        if self.default_rate < 0 or self.deployment_fee < 0:
            raise ValueError("prices must be non-negative")
        if any(rate < 0 for _, rate in self.rates):
            raise ValueError("prices must be non-negative")
        names = [name for name, _ in self.rates]
        if len(set(names)) != len(names):
            raise ValueError("duplicate component rates")

    def rate_for(self, component: str) -> float:
        for name, rate in self.rates:
            if name == component:
                return rate
        return self.default_rate


@dataclass(frozen=True)
class InvoiceLine:
    component: str
    instance_hours: float
    rate_per_hour: float
    deployments: int
    deployment_fee: float

    @property
    def usage_amount(self) -> float:
        return self.instance_hours * self.rate_per_hour

    @property
    def amount(self) -> float:
        return self.usage_amount + self.deployments * self.deployment_fee


@dataclass(frozen=True)
class Invoice:
    """One billing statement for a window of a service's life."""

    service_id: str
    window_start: float
    window_end: float
    lines: tuple[InvoiceLine, ...]
    sla_credits: float = 0.0
    currency: str = "EUR"

    @property
    def subtotal(self) -> float:
        return sum(line.amount for line in self.lines)

    @property
    def total(self) -> float:
        """Never negative: credits cap out at the usage charge."""
        return max(self.subtotal - self.sla_credits, 0.0)

    def render(self) -> str:
        """Human-readable statement."""
        out = [
            f"Invoice — service {self.service_id} "
            f"[{self.window_start:.0f}s .. {self.window_end:.0f}s]",
            f"{'component':<20}{'inst-hours':>12}{'rate':>10}"
            f"{'deploys':>9}{'amount':>12}",
        ]
        for line in self.lines:
            out.append(
                f"{line.component:<20}{line.instance_hours:>12.2f}"
                f"{line.rate_per_hour:>10.3f}{line.deployments:>9}"
                f"{line.amount:>12.2f}"
            )
        out.append(f"{'subtotal':<51}{self.subtotal:>12.2f}")
        if self.sla_credits:
            out.append(f"{'SLA credits':<51}{-self.sla_credits:>12.2f}")
        out.append(f"{'total (' + self.currency + ')':<51}{self.total:>12.2f}")
        return "\n".join(out)


class BillingService:
    """Prices accounted usage; applies SLA penalty credits."""

    def __init__(self, accountant: ServiceAccountant,
                 schedule: Optional[PriceSchedule] = None, *,
                 sla_monitor: Optional[SLAMonitor] = None):
        self.accountant = accountant
        self.schedule = schedule if schedule is not None else PriceSchedule()
        self.sla_monitor = sla_monitor
        self._billed_deployments: dict[str, int] = {}
        self._last_invoiced: float = 0.0

    def invoice(self, start: float, end: Optional[float] = None) -> Invoice:
        """Bill the usage between ``start`` and ``end`` (default: now).

        Deployment fees are charged once per deployment, on the first
        invoice issued after it happened (idempotent across invoices).
        """
        end = self.accountant.env.now if end is None else end
        if end < start:
            raise ValueError("end < start")
        lines = []
        for component in self.accountant.components():
            usage = self.accountant.usage(component, start, end)
            total_deploys = self.accountant.deployed_total.get(component, 0)
            new_deploys = total_deploys - self._billed_deployments.get(
                component, 0)
            self._billed_deployments[component] = total_deploys
            lines.append(InvoiceLine(
                component=component,
                instance_hours=usage.instance_seconds / 3600.0,
                rate_per_hour=self.schedule.rate_for(component),
                deployments=new_deploys,
                deployment_fee=self.schedule.deployment_fee,
            ))
        credits = 0.0
        if self.sla_monitor is not None:
            credits = sum(
                b.penalty for b in self.sla_monitor.breaches()
                if start <= b.time <= end
            )
        self._last_invoiced = end
        return Invoice(
            service_id=self.accountant.service_id,
            window_start=start, window_end=end,
            lines=tuple(lines), sla_credits=credits,
            currency=self.schedule.currency,
        )
