"""The Service Manager (§5.1): manifest parser, lifecycle manager, rule
engine, accounting and the provider-facing facade."""

from .accounting import ServiceAccountant, UsageRecord
from .billing import BillingService, Invoice, InvoiceLine, PriceSchedule
from .lifecycle import (
    ComponentDriver,
    DefaultDriver,
    ManagedComponent,
    ScaleError,
    ServiceLifecycleManager,
)
from .manager import ManagedService, ServiceManager
from .parser import ManifestParser, ParsedService
from .rules import RuleFiring, RuleInterpreter

__all__ = [
    "ServiceAccountant",
    "UsageRecord",
    "BillingService",
    "Invoice",
    "InvoiceLine",
    "PriceSchedule",
    "ComponentDriver",
    "DefaultDriver",
    "ManagedComponent",
    "ScaleError",
    "ServiceLifecycleManager",
    "ManagedService",
    "ServiceManager",
    "ManifestParser",
    "ParsedService",
    "RuleFiring",
    "RuleInterpreter",
]
