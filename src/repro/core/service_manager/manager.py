"""The Service Manager facade.

Ties together the components of Fig. 7: manifest parser, service lifecycle
manager, rule engine and the internal image server, over one VEEM and one
monitoring network. Exposes the Service Provider-facing deployment interface
(§5.1): submit a manifest, receive a managed service handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ...cloud.veem import VEEM
from ...monitoring.distribution import DistributionFramework, MulticastChannel
from ...sim import Environment, Process, TraceLog
from ..constraints.deployment import deployment_suite
from ..constraints.framework import CheckReport
from ..manifest.elasticity import ElasticityAction, ElasticityRule, VEEMOperation
from ..manifest.model import ServiceManifest
from .lifecycle import ComponentDriver, ScaleError, ServiceLifecycleManager
from .parser import ManifestParser, ParsedService
from .rules import RuleInterpreter

__all__ = ["ManagedService", "ServiceManager"]


@dataclass
class ManagedService:
    """Handle for one deployed service."""

    parsed: ParsedService
    lifecycle: ServiceLifecycleManager
    interpreter: RuleInterpreter
    deployment: object = None  # Process; join to await full deployment
    #: owning tenant (multi-tenant control plane attribution); None for
    #: services deployed directly against the manager
    tenant: Optional[str] = None
    #: the termination process once undeploy() has been called — the marker
    #: that makes undeploy idempotent
    termination: Optional[Process] = None
    #: ``service.deploy`` causal span (child of the provisioning request's
    #: span when the control plane drove the deployment)
    span: Optional[object] = field(default=None, repr=False)
    #: records on the shared trace attributed to this service, counted by
    #: the manager's dispatch listener until undeploy() detaches the service
    trace_record_count: int = 0
    _suite: object = field(default=None, repr=False)

    @property
    def service_id(self) -> str:
        return self.parsed.service_id

    def check_constraints(self) -> CheckReport:
        """Run the §4.2.2 semantic suite against current state."""
        return self._suite.check(self.lifecycle.provisioning_domain())

    def instance_count(self, system_id: str) -> int:
        return self.lifecycle.instance_count(system_id)


class ServiceManager:
    """The top RESERVOIR layer: Service Provider-facing management."""

    def __init__(self, env: Environment, veem: VEEM, *,
                 network: Optional[DistributionFramework] = None,
                 trace: Optional[TraceLog] = None,
                 eval_period_s: Optional[float] = None):
        self.env = env
        self.veem = veem
        self.network = network or MulticastChannel(env)
        self.trace = trace if trace is not None else veem.trace
        self.parser = ManifestParser()
        self.services: dict[str, ManagedService] = {}
        self._eval_period_s = eval_period_s
        #: called with (service, termination_process) when undeploy begins —
        #: the control plane hooks in here to free admission capacity once
        #: the termination completes, whichever layer initiated the undeploy
        self.on_undeploy: list[
            Callable[[ManagedService, Process], None]] = []
        # Per-service record counting is subscribed *keyed by service id*:
        # the log dispatches an emit to at most one manager, instead of
        # every manager sharing the log scanning every record.
        self._counted: dict[str, ManagedService] = {}

    def _count_record(self, record) -> None:
        service = self._counted.get(record.details.get("service"))
        if service is not None:
            service.trace_record_count += 1

    # ------------------------------------------------------------------
    # Deployment interface (§5.1.1)
    # ------------------------------------------------------------------
    def deploy(self, manifest: Union[str, ServiceManifest], *,
               service_id: Optional[str] = None,
               drivers: Optional[dict[str, ComponentDriver]] = None,
               start_rules: bool = True,
               tenant: Optional[str] = None,
               placement_plan: Optional[dict] = None) -> ManagedService:
        """Steps 1–7: parse, install rules, set up images, deploy VEEs.

        Returns immediately with the deployment running as a process (join
        ``service.deployment`` to await step-7 completion). ``drivers`` maps
        system ids to application-level component drivers. ``tenant`` tags
        the service (and its usage accounting) with the submitting tenant.
        ``placement_plan`` (solver rescue) pins initial instances to hosts,
        keyed ``(system_id, instance_index)``.
        """
        # Step 1: parse + validate.
        parsed = self.parser.parse(manifest, service_id=service_id)
        # The service span nests under whatever is ambient (a control-plane
        # request span, a rule firing) — or roots a new tree for direct
        # deployments; the lifecycle closes it when step 7 completes.
        span = self.trace.span("service-manager", "service.deploy",
                               service=parsed.service_id, tenant=tenant)
        # Step 2: deployment command to the lifecycle manager.
        lifecycle = ServiceLifecycleManager(self.env, parsed, self.veem,
                                            trace=self.trace, tenant=tenant,
                                            placement_plan=placement_plan)
        lifecycle.span = span
        for system_id, driver in (drivers or {}).items():
            lifecycle.use_driver(system_id, driver)
        # Step 3: install the elasticity rules in the rule engine.
        interpreter = RuleInterpreter(
            self.env, parsed.service_id,
            executor=self._make_executor(lifecycle, parsed),
            trace=self.trace,
            eval_period_s=self._eval_period_s,
            kpi_defaults=parsed.manifest.kpi_defaults(),
        )
        interpreter.install_all(parsed.rules())
        interpreter.subscribe_to(self.network)
        if start_rules and parsed.rules():
            interpreter.start()
        # Steps 4–7 run as a process.
        deployment = self.env.process(
            lifecycle.deploy_service(),
            name=f"deploy-service:{parsed.service_id}",
        )
        service = ManagedService(
            parsed=parsed, lifecycle=lifecycle, interpreter=interpreter,
            deployment=deployment, tenant=tenant, span=span,
            _suite=deployment_suite(),
        )
        # Attach the service to the counting listener, keyed by service id:
        # emits for other services (or other sites sharing this log) never
        # reach this manager at all. undeploy() detaches the key, so long
        # simulations churning services don't accumulate dead listeners.
        self._counted[parsed.service_id] = service
        self.trace.subscribe_keyed("service", parsed.service_id,
                                   self._count_record)
        self.services[parsed.service_id] = service
        return service

    def undeploy(self, service: ManagedService) -> Process:
        """Terminate a service; returns the termination process.

        Idempotent: the first call stops and detaches the rule interpreter
        (its monitoring subscriptions stay released) and starts termination;
        every later call is a no-op that returns the *same* termination
        process, so callers can join it without double-terminating.
        """
        if service.termination is not None:
            return service.termination
        service.interpreter.stop()
        service.interpreter.detach()
        self._counted.pop(service.service_id, None)
        self.trace.unsubscribe_keyed("service", service.service_id,
                                     self._count_record)
        if service.span is not None:
            # The undeploy descends from the deployment it reverses.
            service.lifecycle.term_span = self.trace.span(
                "service-manager", "service.undeploy",
                service=service.service_id, parent=service.span)
        termination = self.env.process(
            service.lifecycle.terminate_service(),
            name=f"terminate:{service.service_id}",
        )
        service.termination = termination
        for hook in self.on_undeploy:
            hook(service, termination)
        return termination

    # ------------------------------------------------------------------
    # Elasticity action execution (§5.1.2 steps 3–5)
    # ------------------------------------------------------------------
    def _make_executor(self, lifecycle: ServiceLifecycleManager,
                       parsed: ParsedService):
        def execute(action: ElasticityAction, rule: ElasticityRule) -> bool:
            op = action.operation
            if op is VEEMOperation.NOTIFY:
                self.trace.emit("service-manager", "notify",
                                service=parsed.service_id, rule=rule.name)
                return True
            target = parsed.resolve_action_target(action.component_ref)
            if target is None:
                self.trace.emit("service-manager", "action.unresolved",
                                service=parsed.service_id,
                                ref=action.component_ref)
                return False
            try:
                if op is VEEMOperation.DEPLOY_VM:
                    lifecycle.scale_up(target)
                elif op is VEEMOperation.UNDEPLOY_VM:
                    lifecycle.scale_down(target)
                elif op is VEEMOperation.RECONFIGURE_VM:
                    kwargs = _parse_resize_args(action.arguments)
                    if not kwargs:
                        return False
                    lifecycle.reconfigure(target, **kwargs)
                elif op is VEEMOperation.MIGRATE_VM:
                    if lifecycle.migrate_for_balance(target) is None:
                        return False
                else:  # pragma: no cover - enum is closed
                    return False
            except ScaleError as exc:
                self.trace.emit("service-manager", "action.refused",
                                service=parsed.service_id, rule=rule.name,
                                reason=str(exc))
                return False
            except Exception as exc:
                self.trace.emit("service-manager", "action.failed",
                                service=parsed.service_id, rule=rule.name,
                                error=str(exc))
                return False
            return True

        return execute


def _parse_resize_args(arguments: tuple[str, ...]) -> dict[str, float]:
    """``reconfigureVM(db, cpu=2, memory_mb=4096)`` argument parsing."""
    kwargs: dict[str, float] = {}
    for arg in arguments:
        if "=" not in arg:
            continue
        key, _, value = arg.partition("=")
        key = key.strip()
        if key in ("cpu", "memory_mb"):
            try:
                kwargs[key] = float(value)
            except ValueError:
                continue
    return kwargs
