"""The paper's primary contribution: the manifest language
(:mod:`~repro.core.manifest`), its behavioural semantics as constraints
(:mod:`~repro.core.constraints`) and the Service Manager that enforces them
(:mod:`~repro.core.service_manager`)."""

from . import constraints, manifest, service_manager, sla

__all__ = ["constraints", "manifest", "service_manager", "sla"]
