"""Experiment harness reproducing the paper's evaluation (§6).

* :mod:`~repro.experiments.polymorph` — the Table 3 / Fig. 11 runs
  (dedicated vs. elastic polymorph search);
* :mod:`~repro.experiments.fig11` — series extraction and text rendering of
  Fig. 11;
* :mod:`~repro.experiments.weekly` — the §6.1.4 weekly-usage estimate;
* :mod:`~repro.experiments.scale` — the federation scale harness
  (``python -m repro scale``).
"""

from .fig11 import Fig11Series, extract_series, render_ascii_chart, render_run
from .polymorph import (
    IDLE_KPI,
    INSTANCES_KPI,
    QUEUE_KPI,
    RunResult,
    TestbedConfig,
    polymorph_manifest,
    run_dedicated,
    run_elastic,
    table3,
)
from .scale import ScaleConfig, ScaleReport, run_scale
from .weekly import SearchRecord, WeeklyConfig, WeeklyResult, run_week

__all__ = [
    "Fig11Series",
    "extract_series",
    "render_ascii_chart",
    "render_run",
    "IDLE_KPI",
    "INSTANCES_KPI",
    "QUEUE_KPI",
    "RunResult",
    "TestbedConfig",
    "polymorph_manifest",
    "run_dedicated",
    "run_elastic",
    "table3",
    "ScaleConfig",
    "ScaleReport",
    "run_scale",
    "SearchRecord",
    "WeeklyConfig",
    "WeeklyResult",
    "run_week",
]
