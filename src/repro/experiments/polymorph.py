"""The §6 evaluation: polymorph search on dedicated vs. elastic clusters.

Reproduces the experimental setup of §6.1: six quad-core/8 GB hosts managed
by a VEEM, a three-component service (Orchestration, Grid Management, Condor
Execution), the §6.1.2 elasticity rules, 30-second application-level
monitoring, and the polymorph-search workload (2 seed jobs, 200 refinements
per seed). Two runs are compared:

* **dedicated** — 16 continuously allocated execution nodes (the paper's
  dedicated-cluster baseline, Fig. 11 left);
* **elastic** — execution instances deployed/undeployed by the Service
  Manager's rule engine (Fig. 11 right).

Rule-set note (documented deviation): the paper prints only the scale-up
rule. With that rule alone a 2-job queue never triggers scale-up from zero
instances (2/(0+1) = 2 < 4), so the full rule set evaluated here adds a
*bootstrap* rule (deploy while queued work exists and fewer than
``bootstrap_instances`` are up) and the symmetric scale-down rule the paper
describes but does not print ("We use a similar elasticity rule for
downsizing allocated capacity as the queue size shrinks"). Both extra rules
are expressed in the paper's own rule language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cloud import (
    Host,
    HypervisorTimings,
    ImageRepository,
    VEEM,
)
from ..core.manifest import ManifestBuilder, ServiceManifest
from ..core.service_manager import ServiceManager
from ..grid import (
    CondorExecDriver,
    CondorScheduler,
    ExecutionNodeHandle,
    PolymorphSearchConfig,
    VirtualCluster,
    build_polymorph_workflow,
    WorkflowContext,
)
from ..monitoring import MonitoringAgent
from ..sim import Environment, TimeSeries

__all__ = [
    "UTIL_KPI",
    "TestbedConfig",
    "RunResult",
    "polymorph_manifest",
    "run_dedicated",
    "run_elastic",
    "table3",
]

# KPI qualified names, exactly as printed in §6.1.2.
QUEUE_KPI = "uk.ucl.condor.schedd.queuesize"
INSTANCES_KPI = "uk.ucl.condor.exec.instances.size"
IDLE_KPI = "uk.ucl.condor.exec.idle.size"
#: infrastructure-level trigger for the §7 ablation (CPU utilisation of the
#: execution tier, in percent — what EC2-style auto-scaling observes)
UTIL_KPI = "uk.ucl.infra.exec.cpu.utilisation"


@dataclass(frozen=True)
class TestbedConfig:
    """The §6.1.2 testbed, as configuration.

    (Named "Testbed…" after the paper's §6.1 heading; not a pytest class.)

    Defaults model the paper's six Opteron servers with shared NFS storage;
    latency parameters are calibrated so the elastic run's overhead lands in
    the paper's few-percent band (Table 3: +7.15%).
    """

    __test__ = False  # "Test…"-prefixed dataclass, not a pytest class

    # Physical site: "a collection of six servers, each of them presenting a
    # Quad-Core AMD Opteron ... and 8 GBs of RAM" (§6.1.2).
    n_hosts: int = 6
    host_cpu_cores: float = 4.0
    host_memory_mb: float = 8192.0

    # Hypervisor + storage latency model.
    image_bandwidth_mb_per_s: float = 22.0   # per-VM image clone over NFS
    define_s: float = 3.0
    boot_s: float = 50.0
    shutdown_s: float = 10.0

    # Component images (MB).
    orchestration_image_mb: float = 4096.0
    gridmgmt_image_mb: float = 4096.0
    exec_image_mb: float = 4096.0

    # Condor behaviour.
    registration_delay_s: float = 40.0       # startd advertise after boot
    match_delay_s: float = 2.0
    node_transfer_mb_per_s: float = 50.0

    # Elasticity / monitoring (§6.1.2).
    max_exec_instances: int = 16
    exec_per_host_cap: int = 4
    scale_threshold: float = 4.0              # jobs per instance
    bootstrap_instances: int = 2
    monitoring_period_s: float = 30.0
    time_constraint_ms: float = 5000.0
    #: spacing between successive scale-down firings; deliberately slower
    #: than scale-up so transient queue dips don't thrash the cluster
    scale_down_cooldown_s: float = 45.0
    #: spacing between bootstrap-rule firings; None uses the rule's time
    #: constraint (one deploy per evaluation window). Setting it to the
    #: monitoring period suppresses the stale-KPI overshoot at cold start.
    bootstrap_cooldown_s: Optional[float] = None

    #: pre-stage exec images on hosts (the §6.1.4 mitigation; ablation knob)
    prestage_images: bool = False
    #: KPI category for rule triggers: "app" (queue length, the paper's
    #: choice) or "infra" (host CPU utilisation — the §7 comparison point)
    trigger_mode: str = "app"

    def __post_init__(self) -> None:
        if self.trigger_mode not in ("app", "infra"):
            raise ValueError("trigger_mode must be 'app' or 'infra'")
        if self.bootstrap_instances < 1:
            raise ValueError("bootstrap_instances must be ≥ 1")


@dataclass
class RunResult:
    """Everything Fig. 11 and Table 3 need from one run."""

    mode: str                                 # "dedicated" | "elastic"
    turnaround_s: float
    #: search start/end in simulation time
    run_start: float
    run_end: float
    #: time the last execution VM stopped (elastic only)
    shutdown_time_s: Optional[float]
    #: step series of queued (idle) jobs
    queue_series: TimeSeries
    #: step series of allocated execution instances
    nodes_series: TimeSeries
    mean_nodes_run: float = 0.0
    mean_nodes_until_shutdown: Optional[float] = None
    peak_nodes: float = 0.0
    jobs_completed: int = 0
    #: diagnostics
    rule_firings: dict = field(default_factory=dict)
    trace: object = None

    def finalize(self) -> "RunResult":
        self.mean_nodes_run = self.nodes_series.mean(
            self.run_start, self.run_end)
        if self.shutdown_time_s is not None:
            end = self.run_start + self.shutdown_time_s
            self.mean_nodes_until_shutdown = self.nodes_series.mean(
                self.run_start, end)
        self.peak_nodes = self.nodes_series.maximum(
            self.run_start, self.run_end)
        return self


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

def polymorph_manifest(cfg: TestbedConfig) -> ServiceManifest:
    """The service definition manifest of §6.1.2, in the builder API."""
    b = ManifestBuilder("polymorphGridService")
    b.network("internal", description="virtual cluster interconnect")
    b.network("dmz", description="user-facing HTTP front end", public=True)

    # "Both the Orchestration and Grid Management components will be
    # allocated the equivalent of a single physical host each, due to heavy
    # memory requirements" (§6.1.2).
    b.component("Orchestration", image_mb=cfg.orchestration_image_mb,
                cpu=cfg.host_cpu_cores, memory_mb=cfg.host_memory_mb,
                networks=["internal", "dmz"], startup_order=0,
                info="BPEL orchestration web service")
    b.component("GridMgmt", image_mb=cfg.gridmgmt_image_mb,
                cpu=cfg.host_cpu_cores, memory_mb=cfg.host_memory_mb,
                networks=["internal"], startup_order=1,
                info="web-service job submission front end + Condor schedd")
    # "up to 4 Condor Execution components may be deployed on a single
    # physical host, limiting the maximum cluster size to 16 nodes".
    b.component("exec", image_mb=cfg.exec_image_mb,
                cpu=cfg.host_cpu_cores / cfg.exec_per_host_cap,
                memory_mb=cfg.host_memory_mb / cfg.exec_per_host_cap,
                networks=["internal"], startup_order=2,
                initial=0, minimum=0, maximum=cfg.max_exec_instances,
                info="Condor execution service",
                customisation={"schedd": "${ip.internal.GridMgmt}"})
    b.per_host_cap("exec", cfg.exec_per_host_cap)

    b.application("polymorphGridApp")
    b.kpi("GridMgmtService", "GridMgmt", QUEUE_KPI,
          frequency_s=cfg.monitoring_period_s, type_name="int",
          units="jobs", default=0)
    b.kpi("Cluster", "exec", INSTANCES_KPI,
          frequency_s=cfg.monitoring_period_s, type_name="int", default=0)
    b.kpi("ClusterIdle", "exec", IDLE_KPI,
          frequency_s=cfg.monitoring_period_s, type_name="int", default=0)

    if cfg.trigger_mode == "app":
        # The §6.1.2 rule, verbatim semantics.
        b.rule(
            "AdjustClusterSizeUp",
            f"(@{QUEUE_KPI} / (@{INSTANCES_KPI} + 1) > {cfg.scale_threshold}) "
            f"&& (@{INSTANCES_KPI} < {cfg.max_exec_instances})",
            "deployVM(uk.ucl.condor.exec.ref)",
            time_constraint_ms=cfg.time_constraint_ms,
        )
        # Documented completion #2: the unprinted "similar rule for
        # downsizing".
        b.rule(
            "AdjustClusterSizeDown",
            f"(@{QUEUE_KPI} == 0) && (@{IDLE_KPI} > 0)",
            "undeployVM(uk.ucl.condor.exec.ref)",
            time_constraint_ms=cfg.time_constraint_ms,
            cooldown_s=cfg.scale_down_cooldown_s,
        )
    else:
        # §7 ablation: EC2-style triggers on infrastructure CPU utilisation.
        # "the need to increase the cluster size cannot be identified through
        # these metrics as we require an understanding of the scheduling
        # process" — a node running its single job is 100% busy whether the
        # queue holds 1 job or 200, so utilisation over-provisions during the
        # seed phase and carries no scale-out signal proportional to demand.
        b.kpi("InfraMonitor", "exec", UTIL_KPI,
              frequency_s=cfg.monitoring_period_s, type_name="double",
              units="percent", category="Infrastructure", default=0)
        b.rule(
            "UtilisationScaleUp",
            f"(@{UTIL_KPI} > 75) && (@{INSTANCES_KPI} < {cfg.max_exec_instances})",
            "deployVM(uk.ucl.condor.exec.ref)",
            time_constraint_ms=cfg.time_constraint_ms,
        )
        b.rule(
            "UtilisationScaleDown",
            f"(@{UTIL_KPI} < 25) && (@{IDLE_KPI} > 0)",
            "undeployVM(uk.ucl.condor.exec.ref)",
            time_constraint_ms=cfg.time_constraint_ms,
            cooldown_s=cfg.scale_down_cooldown_s,
        )
    # Documented completion #1: bootstrap from zero/near-zero instances
    # (needed in both modes: neither rule family can start a cluster whose
    # utilisation and queue ratio are undefined at size zero).
    b.rule(
        "BootstrapCluster",
        f"(@{QUEUE_KPI} > 0) && (@{INSTANCES_KPI} < {cfg.bootstrap_instances})",
        "deployVM(uk.ucl.condor.exec.ref)",
        time_constraint_ms=cfg.time_constraint_ms,
        cooldown_s=cfg.bootstrap_cooldown_s,
    )
    return b.build()


# ---------------------------------------------------------------------------
# Dedicated baseline (Fig. 11 left)
# ---------------------------------------------------------------------------

def run_dedicated(workload: Optional[PolymorphSearchConfig] = None,
                  cfg: Optional[TestbedConfig] = None) -> RunResult:
    """The paper's dedicated environment: 16 always-on execution nodes."""
    workload = workload or PolymorphSearchConfig()
    cfg = cfg or TestbedConfig()
    env = Environment()
    scheduler = CondorScheduler(env, match_delay_s=cfg.match_delay_s)
    for i in range(cfg.max_exec_instances):
        scheduler.register_node(ExecutionNodeHandle(
            f"dedicated-{i}", transfer_mb_per_s=cfg.node_transfer_mb_per_s))

    ctx = WorkflowContext(env, scheduler)
    run = build_polymorph_workflow(workload)
    start = env.now
    env.run(until=run.workflow.start(ctx))

    result = RunResult(
        mode="dedicated",
        turnaround_s=run.workflow.turnaround,
        run_start=start,
        run_end=env.now,
        shutdown_time_s=None,
        queue_series=scheduler.series["queue_size"],
        nodes_series=scheduler.series["nodes_registered"],
        jobs_completed=len(scheduler.completed_jobs()),
        trace=scheduler.trace,
    )
    return result.finalize()


# ---------------------------------------------------------------------------
# Elastic run on the full RESERVOIR stack (Fig. 11 right)
# ---------------------------------------------------------------------------

def run_elastic(workload: Optional[PolymorphSearchConfig] = None,
                cfg: Optional[TestbedConfig] = None) -> RunResult:
    """Deploy the manifest through the Service Manager and run the search."""
    workload = workload or PolymorphSearchConfig()
    cfg = cfg or TestbedConfig()
    env = Environment()

    # -- infrastructure -----------------------------------------------------
    timings = HypervisorTimings(
        define_s=cfg.define_s, boot_s=cfg.boot_s, shutdown_s=cfg.shutdown_s)
    repo = ImageRepository(bandwidth_mb_per_s=cfg.image_bandwidth_mb_per_s)
    veem = VEEM(env, repository=repo)
    for i in range(cfg.n_hosts):
        veem.add_host(Host(env, f"host-{i}", cpu_cores=cfg.host_cpu_cores,
                           memory_mb=cfg.host_memory_mb, timings=timings))
    sm = ServiceManager(env, veem)

    manifest = polymorph_manifest(cfg)
    if cfg.prestage_images:
        exec_file = manifest.file("exec-image")
        repo.add(exec_file.file_id, exec_file.size_mb, href=exec_file.href)
        for host in veem.hosts:
            host.prestage(exec_file.file_id)

    # -- application glue -----------------------------------------------------
    scheduler = CondorScheduler(env, match_delay_s=cfg.match_delay_s,
                                trace=veem.trace)
    cluster = VirtualCluster(
        env, veem, scheduler,
        descriptor_template=_template_for(manifest, "exec"),
        registration_delay_s=cfg.registration_delay_s,
        trace=veem.trace,
    )

    service = sm.deploy(manifest, service_id="polymorph-1",
                        drivers={"exec": CondorExecDriver(cluster)})
    env.run(until=service.deployment)

    # -- monitoring agents (§6.1.2: agent on the Grid Management service) ----
    agent = MonitoringAgent(env, service_id="polymorph-1",
                            component="GridMgmtService", network=sm.network)
    agent.expose(QUEUE_KPI, lambda: scheduler.queue_size,
                 frequency_s=cfg.monitoring_period_s, units="jobs")
    agent.expose(INSTANCES_KPI, lambda: cluster.instance_count,
                 frequency_s=cfg.monitoring_period_s)
    agent.expose(IDLE_KPI, lambda: scheduler.idle_node_count,
                 frequency_s=cfg.monitoring_period_s)
    if cfg.trigger_mode == "infra":
        from ..monitoring import AttributeType

        def utilisation() -> float:
            registered = scheduler.node_count
            if registered == 0:
                return 0.0
            return 100.0 * scheduler.running_jobs / registered

        agent.expose(UTIL_KPI, utilisation,
                     frequency_s=cfg.monitoring_period_s,
                     type=AttributeType.DOUBLE)

    # -- run the search --------------------------------------------------------
    ctx = WorkflowContext(env, scheduler)
    run = build_polymorph_workflow(workload)
    start = env.now
    env.run(until=run.workflow.start(ctx))
    run_end = env.now

    # Let the scale-down rules deallocate everything (complete shutdown).
    horizon = run_end + 4 * 3600
    while env.now < horizon:
        if (service.lifecycle.instance_count("exec") == 0
                and scheduler.node_count == 0):
            break
        next_t = min(env.now + 30, horizon)
        env.run(until=next_t)
    shutdown_time = (env.now - start
                     if service.lifecycle.instance_count("exec") == 0
                     else None)

    exec_series = service.lifecycle.accountant.series("exec")
    result = RunResult(
        mode="elastic",
        turnaround_s=run.workflow.turnaround,
        run_start=start,
        run_end=run_end,
        shutdown_time_s=shutdown_time,
        queue_series=scheduler.series["queue_size"],
        nodes_series=exec_series if exec_series is not None
        else TimeSeries("exec_allocated", initial=0, start=start),
        jobs_completed=len(scheduler.completed_jobs()),
        rule_firings=service.interpreter.stats(),
        trace=sm.trace,
    )
    return result.finalize()


def _template_for(manifest: ServiceManifest, system_id: str):
    """A descriptor template for VirtualCluster's standalone mode (unused
    when driven through the Service Manager, but required by its API)."""
    from ..cloud import DeploymentDescriptor

    system = manifest.system(system_id)
    return DeploymentDescriptor(
        name=system.system_id,
        memory_mb=system.hardware.memory_mb,
        cpu=system.hardware.cpu,
        disk_source=manifest.image_href(system),
        networks=tuple(system.network_refs),
        service_id="polymorph-1",
        component_id=system_id,
    )


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------

def table3(dedicated: RunResult, elastic: RunResult) -> dict[str, float]:
    """Compute the paper's Table 3 rows from the two runs.

    The percentage rows follow the paper's arithmetic: the resource-usage
    saving is the ratio of time-averaged node counts (1 − 10.49/16 ≈
    34.46% in the paper), and the extra run time is the relative turn-around
    increase (+7.15% in the paper).
    """
    saving = 1.0 - elastic.mean_nodes_run / dedicated.mean_nodes_run
    extra = (elastic.turnaround_s - dedicated.turnaround_s) \
        / dedicated.turnaround_s
    return {
        "dedicated_turnaround_s": dedicated.turnaround_s,
        "cloud_turnaround_s": elastic.turnaround_s,
        "cloud_shutdown_s": elastic.shutdown_time_s,
        "dedicated_mean_nodes_run": dedicated.mean_nodes_run,
        "cloud_mean_nodes_run": elastic.mean_nodes_run,
        "cloud_mean_nodes_until_shutdown": elastic.mean_nodes_until_shutdown,
        "resource_usage_saving": saving,
        "extra_run_time": extra,
    }
