"""The §6.1.4 weekly-usage estimate.

"If we consider the overall use of the application over the course of a
randomly selected week on a fully dedicated environment where resources are
continuously available, even more significant cost savings will exist.
Examining logs of searches conducted during this period ... we have
estimated that overall resource consumption would drop by 69.18%, due to the
fact that searches are not run continuously; no searches were run on two
days of the week, and searches, though of varying size, were run only over a
portion of the day, leaving resources unused for considerable amounts of
time."

This module simulates exactly that week on the full stack: a service
deployed once; five active days whose working window is filled with searches
of varying size, two idle days; the elasticity rules allocate and completely
deallocate the execution cluster around every search. The dedicated baseline
holds 16 nodes allocated continuously for the whole week.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..cloud import Host, HypervisorTimings, ImageRepository, VEEM
from ..core.service_manager import ServiceManager
from ..grid import (
    CondorExecDriver,
    CondorScheduler,
    PolymorphSearchConfig,
    VirtualCluster,
    WorkflowContext,
    build_polymorph_workflow,
)
from ..monitoring import MonitoringAgent
from ..sim import Environment, RandomStreams
from .polymorph import (
    IDLE_KPI,
    INSTANCES_KPI,
    QUEUE_KPI,
    TestbedConfig,
    polymorph_manifest,
    _template_for,
)

__all__ = ["WeeklyConfig", "SearchRecord", "WeeklyResult", "run_week"]

DAY_S = 24 * 3600.0
WEEK_S = 7 * DAY_S


@dataclass(frozen=True)
class WeeklyConfig:
    """Shape of the logged week the paper describes."""

    #: day indices (0–6) with no searches at all
    idle_days: tuple[int, ...] = (2, 6)
    #: daily working window within which searches are launched
    window_start_s: float = 6 * 3600.0     # 06:00
    window_end_s: float = 21 * 3600.0      # 21:00
    #: size variation: refinements-per-seed scale factors drawn uniformly
    min_scale: float = 0.5
    max_scale: float = 1.5
    #: gap between the end of one search and the start of the next (s)
    inter_search_gap_s: float = 600.0
    random_seed: int = 7
    #: base workload (the Table 3 search)
    base_workload: PolymorphSearchConfig = field(
        default_factory=PolymorphSearchConfig)

    def __post_init__(self) -> None:
        if not 0 < self.window_start_s < self.window_end_s <= DAY_S:
            raise ValueError("bad daily window")
        if not 0 < self.min_scale <= self.max_scale:
            raise ValueError("bad scale range")
        if any(not 0 <= d <= 6 for d in self.idle_days):
            raise ValueError("idle days must be in 0..6")


@dataclass
class SearchRecord:
    """One search of the week, as the harness logged it."""

    day: int
    started_at: float
    finished_at: float
    scale: float
    jobs: int

    @property
    def turnaround_s(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class WeeklyResult:
    """Aggregates for the §6.1.4 comparison."""

    searches: list[SearchRecord]
    #: execution-node-seconds actually allocated over the week (elastic)
    elastic_node_seconds: float
    #: the always-on baseline: 16 nodes for the full week
    dedicated_node_seconds: float

    @property
    def saving(self) -> float:
        """The paper's "overall resource consumption would drop by" figure."""
        return 1.0 - self.elastic_node_seconds / self.dedicated_node_seconds

    @property
    def search_count(self) -> int:
        return len(self.searches)

    @property
    def busy_fraction(self) -> float:
        """Fraction of the week during which a search was in progress."""
        busy = sum(s.turnaround_s for s in self.searches)
        return busy / WEEK_S


def _scaled_workload(base: PolymorphSearchConfig, scale: float,
                     seed: int) -> PolymorphSearchConfig:
    """Vary a search's size: refinement count and seed-job durations scale
    together (a larger molecule means longer coarse search and more
    minimisations)."""
    return replace(
        base,
        seed_durations_s=tuple(d * scale for d in base.seed_durations_s),
        refinements_per_seed=max(1, round(base.refinements_per_seed * scale)),
        random_seed=seed,
    )


def run_week(cfg: Optional[WeeklyConfig] = None,
             testbed: Optional[TestbedConfig] = None) -> WeeklyResult:
    """Simulate the whole week on the elastic stack."""
    cfg = cfg or WeeklyConfig()
    testbed = testbed or TestbedConfig()
    rng = RandomStreams(cfg.random_seed).stream("weekly")
    env = Environment()

    timings = HypervisorTimings(
        define_s=testbed.define_s, boot_s=testbed.boot_s,
        shutdown_s=testbed.shutdown_s)
    repo = ImageRepository(
        bandwidth_mb_per_s=testbed.image_bandwidth_mb_per_s)
    veem = VEEM(env, repository=repo)
    for i in range(testbed.n_hosts):
        veem.add_host(Host(env, f"host-{i}", cpu_cores=testbed.host_cpu_cores,
                           memory_mb=testbed.host_memory_mb, timings=timings))
    sm = ServiceManager(env, veem)

    manifest = polymorph_manifest(testbed)
    scheduler = CondorScheduler(env, match_delay_s=testbed.match_delay_s,
                                trace=veem.trace)
    cluster = VirtualCluster(
        env, veem, scheduler,
        descriptor_template=_template_for(manifest, "exec"),
        registration_delay_s=testbed.registration_delay_s,
        trace=veem.trace,
    )
    service = sm.deploy(manifest, service_id="polymorph-week",
                        drivers={"exec": CondorExecDriver(cluster)})
    env.run(until=service.deployment)

    agent = MonitoringAgent(env, service_id="polymorph-week",
                            component="GridMgmtService", network=sm.network)
    agent.expose(QUEUE_KPI, lambda: scheduler.queue_size,
                 frequency_s=testbed.monitoring_period_s, units="jobs")
    agent.expose(INSTANCES_KPI, lambda: cluster.instance_count,
                 frequency_s=testbed.monitoring_period_s)
    agent.expose(IDLE_KPI, lambda: scheduler.idle_node_count,
                 frequency_s=testbed.monitoring_period_s)

    week_start = env.now
    searches: list[SearchRecord] = []

    def week_process():
        search_seq = 0
        for day in range(7):
            if day in cfg.idle_days:
                continue
            window_open = week_start + day * DAY_S + cfg.window_start_s
            window_close = week_start + day * DAY_S + cfg.window_end_s
            if env.now < window_open:
                yield env.timeout(window_open - env.now)
            while env.now < window_close:
                search_seq += 1
                scale = float(rng.uniform(cfg.min_scale, cfg.max_scale))
                workload = _scaled_workload(
                    cfg.base_workload, scale, seed=1000 + search_seq)
                run = build_polymorph_workflow(workload)
                ctx = WorkflowContext(env, scheduler)
                started = env.now
                yield run.workflow.start(ctx)
                searches.append(SearchRecord(
                    day=day, started_at=started, finished_at=env.now,
                    scale=scale, jobs=workload.total_jobs,
                ))
                yield env.timeout(cfg.inter_search_gap_s)

    proc = env.process(week_process(), name="weekly-schedule")
    env.run(until=proc)
    # Let the final deallocation complete, then close the week.
    env.run(until=max(env.now, week_start + WEEK_S))

    exec_series = service.lifecycle.accountant.series("exec")
    elastic_node_seconds = (
        exec_series.integral(week_start, week_start + WEEK_S)
        if exec_series is not None else 0.0
    )
    return WeeklyResult(
        searches=searches,
        elastic_node_seconds=elastic_node_seconds,
        dedicated_node_seconds=testbed.max_exec_instances * WEEK_S,
    )
