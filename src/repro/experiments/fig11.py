"""Fig. 11 regeneration: job submission and resource availability.

The paper plots, for both runs, the number of queued jobs against the number
of Condor execution instances over the run. This module samples both step
series on a regular grid and renders them as aligned text charts — the same
information as the figure, printable from a terminal or a benchmark log.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import TimeSeries
from .polymorph import RunResult

__all__ = ["Fig11Series", "extract_series", "render_ascii_chart",
           "render_run"]


@dataclass(frozen=True)
class Fig11Series:
    """One run's Fig. 11 data: aligned (time, queued, instances) samples."""

    mode: str
    times: tuple[float, ...]
    queued: tuple[float, ...]
    instances: tuple[float, ...]

    def rows(self) -> list[tuple[float, float, float]]:
        return list(zip(self.times, self.queued, self.instances))


def extract_series(result: RunResult, *, period_s: float = 60.0
                   ) -> Fig11Series:
    """Sample a run's queue and instance series on a regular grid."""
    start, end = result.run_start, result.run_end
    if result.shutdown_time_s is not None:
        end = max(end, result.run_start + result.shutdown_time_s)
    queue = result.queue_series.sample(start, end, period_s)
    nodes = result.nodes_series.sample(start, end, period_s)
    times = tuple(round(t - start, 3) for t, _ in queue)
    return Fig11Series(
        mode=result.mode,
        times=times,
        queued=tuple(v for _, v in queue),
        instances=tuple(v for _, v in nodes),
    )


def render_ascii_chart(series: TimeSeries, start: float, end: float, *,
                       width: int = 72, height: int = 12,
                       label: str = "") -> str:
    """A small text plot of a step series (down-sampled to ``width`` cols)."""
    if end <= start:
        raise ValueError("need end > start")
    period = (end - start) / width
    samples = [series.value_at(min(start + i * period, end))
               for i in range(width)]
    top = max(max(samples), 1.0)
    rows = []
    for level in range(height, 0, -1):
        threshold = top * (level - 0.5) / height
        row = "".join("█" if v >= threshold else " " for v in samples)
        rows.append(f"{top * level / height:8.0f} |{row}")
    rows.append(" " * 9 + "+" + "-" * width)
    rows.append(" " * 10 + f"0 s{' ' * (width - 12)}{end - start:7.0f} s")
    title = f"{label or series.name} (max {max(samples):.0f})"
    return title + "\n" + "\n".join(rows)


def render_run(result: RunResult, *, width: int = 72) -> str:
    """Both Fig. 11 panels for one run, as text."""
    end = result.run_end
    if result.shutdown_time_s is not None:
        end = max(end, result.run_start + result.shutdown_time_s)
    queued = render_ascii_chart(
        result.queue_series, result.run_start, end, width=width,
        label=f"[{result.mode}] queued jobs")
    nodes = render_ascii_chart(
        result.nodes_series, result.run_start, end, width=width,
        label=f"[{result.mode}] execution instances")
    return queued + "\n\n" + nodes
