"""Federation scale harness: ``python -m repro scale``.

The paper pitches the architecture at *on-demand provisioning for large
federated clouds*; the acceptance scenarios exercise it at a handful of
sites. This harness is the scale sweep those claims are judged by: stand up
an N-site federation through the real :class:`~repro.control.ControlPlane`
(per-site VEEM, ServiceManager and guaranteed-capacity admission), submit
tens of thousands of services across weighted tenants, drive every service
with an SAP-style session profile published through its
:class:`~repro.monitoring.MonitoringAgent` (bursts trip the manifest's
elasticity rules, so the federation scales VMs up and back down), and
report what the run cost:

* **events/sec** — kernel events processed over wall-clock time;
* **wall-clock per simulated hour** — how much real time one simulated
  hour costs at this scale;
* **peak RSS per 1k peak VMs** — the memory footprint the federation's
  state (hosts, VMs, services, series, trace) imposes, normalised by
  fleet size.

Everything is deterministic under ``random_seed``: session profiles come
from :class:`~repro.sim.RandomStreams`, and the kernel replays identically
(``reference=True`` runs the same workload on the heap oracle kernel).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

from ..cloud import Host, HypervisorTimings, ImageRepository, VEEM
from ..control import Admitted, ControlPlane, Queued
from ..core.manifest import ManifestBuilder
from ..monitoring import MonitoringAgent
from ..sim import Environment, RandomStreams

__all__ = ["ScaleConfig", "ScaleReport", "run_scale"]

#: KPI the session drivers publish and the elasticity rules react to.
SESSIONS_KPI = "scale.app.sessions"


@dataclass(frozen=True)
class ScaleConfig:
    """Shape of one federation scale run."""

    sites: int = 100
    services: int = 10_000
    hours: float = 1.0
    tenants: int = 8
    #: run the workload on the heap oracle kernel instead of the wheel
    reference: bool = False
    random_seed: int = 2010

    #: session-KPI publication period (per service)
    monitor_period_s: float = 60.0
    #: live-VM census period (peak-fleet tracking)
    sample_period_s: float = 60.0
    #: fraction of services whose burst exceeds the scale-up threshold
    elastic_fraction: float = 0.25

    #: homogeneous host/VM shapes (the §6.1.2 testbed host by default)
    host_cpu: float = 4.0
    host_memory_mb: float = 8192.0
    vm_cpu: float = 1.0
    vm_memory_mb: float = 1024.0
    image_mb: float = 64.0
    max_instances: int = 2

    def __post_init__(self) -> None:
        if self.sites <= 0 or self.services <= 0 or self.hours <= 0:
            raise ValueError("sites, services and hours must be positive")
        if self.tenants <= 0:
            raise ValueError("need at least one tenant")
        if not 0.0 <= self.elastic_fraction <= 1.0:
            raise ValueError("elastic_fraction must be in [0, 1]")

    @property
    def duration_s(self) -> float:
        return self.hours * 3600.0

    @property
    def services_per_site(self) -> int:
        return math.ceil(self.services / self.sites)

    @property
    def hosts_per_site(self) -> int:
        """Size each pool so the whole submission's *ceiling* is admissible
        (guaranteed capacity): every service may reach ``max_instances``."""
        per_host = min(int(self.host_cpu // self.vm_cpu),
                       int(self.host_memory_mb // self.vm_memory_mb))
        if per_host < 1:
            raise ValueError("VM shape exceeds the host shape")
        ceiling = self.services_per_site * self.max_instances
        return math.ceil(ceiling / per_host) + 1


@dataclass
class ScaleReport:
    """What the run did and what it cost."""

    sites: int
    services: int
    hours: float
    reference: bool
    admitted: int
    queued: int
    rejected: int
    peak_vms: int
    peak_queue_depth: int
    events_processed: int
    dead_skipped: int
    wall_s: float
    peak_rss_kb: int

    @property
    def events_per_sec(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s else 0.0

    @property
    def wall_s_per_sim_hour(self) -> float:
        return self.wall_s / self.hours

    @property
    def rss_mb_per_1k_vms(self) -> float:
        """Peak RSS (whole process, interpreter included) per 1000 VMs of
        peak fleet — a coarse, comparable footprint figure."""
        if self.peak_vms <= 0:
            return 0.0
        return (self.peak_rss_kb / 1024.0) / (self.peak_vms / 1000.0)

    def render(self) -> str:
        kernel = "heap (reference)" if self.reference else "timer wheel"
        lines = [
            f"federation:        {self.sites} site(s), "
            f"{self.services} service(s), {self.hours:g} simulated hour(s)",
            f"kernel:            {kernel}",
            f"admitted:          {self.admitted} "
            f"(queued {self.queued}, rejected {self.rejected})",
            f"peak VMs:          {self.peak_vms}",
            f"peak queue depth:  {self.peak_queue_depth}",
            f"events processed:  {self.events_processed} "
            f"({self.dead_skipped} dead entries skipped)",
            f"events/sec:        {self.events_per_sec:,.0f}",
            f"wall-clock/sim-h:  {self.wall_s_per_sim_hour:.2f} s",
            f"peak RSS:          {self.peak_rss_kb / 1024:.1f} MB "
            f"({self.rss_mb_per_1k_vms:.1f} MB per 1k VMs)",
        ]
        return "\n".join(lines)


def _scale_manifest(cfg: ScaleConfig):
    """One shared SAP-style manifest: a session-serving ``app`` tier whose
    session KPI drives a scale-up/scale-down rule pair. Sharing the object
    across submissions is deliberate — admission memoisation keys on
    manifest identity."""
    b = ManifestBuilder("sap-session-svc")
    b.component("app", image_mb=cfg.image_mb, cpu=cfg.vm_cpu,
                memory_mb=cfg.vm_memory_mb,
                initial=1, minimum=1, maximum=cfg.max_instances)
    b.kpi("app", "app", SESSIONS_KPI,
          frequency_s=cfg.monitor_period_s, default=30)
    b.rule("up", f"@{SESSIONS_KPI} > 80", "deployVM(app)",
           time_constraint_ms=120_000, cooldown_s=4 * cfg.monitor_period_s)
    # The rules' time constraints set the interpreter's evaluation period
    # (min/2): at 120 s both, each service evaluates once per simulated
    # minute instead of every 2.5 s — the difference between a harness that
    # measures the kernel and one that measures the rule engine.
    b.rule("down", f"@{SESSIONS_KPI} < 20", "undeployVM(app)",
           time_constraint_ms=120_000, cooldown_s=4 * cfg.monitor_period_s)
    return b.build()


def _session_driver(env, state, start_s, ramp: tuple[int, ...],
                    hold_s: float, quiet_s: float, drain_level: int):
    """SAP-style session tide for one service: ramp up in steps, hold the
    peak, drain (a service that scaled up drains below the scale-down
    threshold, releasing its extra VM), then settle back to the baseline."""
    yield env.timeout(start_s)
    for level in ramp:
        state["sessions"] = level
        yield env.timeout(hold_s / len(ramp))
    state["sessions"] = drain_level
    yield env.timeout(quiet_s)
    state["sessions"] = 30          # baseline: between both thresholds


def _vm_census(env, veems, peak, period_s):
    """Periodic live-VM census across every site; tracks the peak fleet."""
    while True:
        total = 0
        for veem in veems:
            for vm in veem.vms.values():
                if vm.is_active:
                    total += 1
        if total > peak["vms"]:
            peak["vms"] = total
        yield env.timeout(period_s)


def run_scale(cfg: Optional[ScaleConfig] = None, *,
              progress=None) -> ScaleReport:
    """Run one federation scale sweep and measure it."""
    cfg = cfg or ScaleConfig()
    say = progress or (lambda _msg: None)
    try:
        import resource as _resource
    except ImportError:                     # non-POSIX: report 0
        _resource = None

    wall_start = time.perf_counter()
    env = Environment(reference=cfg.reference)
    rng = RandomStreams(cfg.random_seed).stream("scale")
    control = ControlPlane(env)
    timings = HypervisorTimings(define_s=1.0, boot_s=10.0, shutdown_s=2.0)

    say(f"building {cfg.sites} site(s) × {cfg.hosts_per_site} host(s) ...")
    veems = []
    for s in range(cfg.sites):
        veem = VEEM(env, name=f"site-{s}", trace=control.trace,
                    repository=ImageRepository(bandwidth_mb_per_s=1000.0))
        for h in range(cfg.hosts_per_site):
            veem.add_host(Host(env, f"site-{s}-h{h}",
                               cpu_cores=cfg.host_cpu,
                               memory_mb=cfg.host_memory_mb,
                               timings=timings))
        veems.append(veem)
        control.add_site(f"site-{s}", veem)
    for t in range(cfg.tenants):
        control.register_tenant(f"tenant-{t}", weight=1 + t % 3)

    manifest = _scale_manifest(cfg)
    say(f"submitting {cfg.services} service(s) "
        f"across {cfg.tenants} tenant(s) ...")
    admitted = queued = rejected = 0
    admitted_requests = []
    for i in range(cfg.services):
        out = control.submit(f"tenant-{i % cfg.tenants}", manifest,
                             service_id=f"svc-{i}")
        if isinstance(out, Admitted):
            admitted += 1
            admitted_requests.append(out.request)
        elif isinstance(out, Queued):
            queued += 1
        else:
            rejected += 1

    # Session tides: every service gets one burst; a seeded fraction bursts
    # past the scale-up threshold and grows its app tier until the tide
    # drains. Profiles are drawn deterministically from the seeded stream.
    duration = cfg.duration_s
    states = []
    for i, request in enumerate(admitted_requests):
        state = {"sessions": 30}
        states.append(state)
        elastic = rng.random() < cfg.elastic_fraction
        peak_sessions = (int(rng.uniform(100, 150)) if elastic
                         else int(rng.uniform(40, 70)))
        start_s = rng.uniform(0.05, 0.4) * duration
        hold_s = rng.uniform(0.15, 0.3) * duration
        ramp = (peak_sessions // 2, peak_sessions)
        # Only services that burst past the scale-up threshold drain below
        # the scale-down threshold afterwards; a service already at its
        # minimum has nothing to release, and parking it under the
        # threshold would just no-op the down rule every evaluation.
        drain_level = 10 if elastic else 30
        env.process(
            _session_driver(env, state, start_s, ramp, hold_s,
                            quiet_s=6 * cfg.monitor_period_s,
                            drain_level=drain_level),
            name=f"sessions:{request.service_id}")

    say("deploying and wiring monitoring agents ...")
    # Let the initial fleet deploy, then attach one agent per service so
    # the KPI stream flows through each site's monitoring network.
    env.run(until=60.0)
    for request, state in zip(admitted_requests, states):
        if request.service is None:
            continue
        site = next(s for s in control.sites if s.name == request.site)
        agent = MonitoringAgent(env, service_id=request.service_id,
                                component="app",
                                network=site.manager.network)
        agent.expose(SESSIONS_KPI, lambda s=state: s["sessions"],
                     frequency_s=cfg.monitor_period_s, units="sessions")

    peak = {"vms": 0}
    env.process(_vm_census(env, veems, peak, cfg.sample_period_s),
                name="vm-census")

    say(f"running {cfg.hours:g} simulated hour(s) ...")
    env.run(until=duration)

    wall_s = time.perf_counter() - wall_start
    peak_rss_kb = (_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
                   if _resource is not None else 0)
    depth_series = control.series["queue.depth"]
    return ScaleReport(
        sites=cfg.sites, services=cfg.services, hours=cfg.hours,
        reference=cfg.reference,
        admitted=admitted, queued=queued, rejected=rejected,
        peak_vms=peak["vms"],
        peak_queue_depth=int(depth_series.maximum()),
        events_processed=env.events_processed,
        dead_skipped=env.dead_skipped,
        wall_s=wall_s, peak_rss_kb=int(peak_rss_kb),
    )
