"""Federation scale harness: ``python -m repro scale``.

The paper pitches the architecture at *on-demand provisioning for large
federated clouds*; the acceptance scenarios exercise it at a handful of
sites. This harness is the scale sweep those claims are judged by: stand up
an N-site federation through the real :class:`~repro.control.ControlPlane`
(per-site VEEM, ServiceManager and guaranteed-capacity admission), submit
tens of thousands of services across weighted tenants, drive every service
with an SAP-style session profile published through its
:class:`~repro.monitoring.MonitoringAgent` (bursts trip the manifest's
elasticity rules, so the federation scales VMs up and back down), and
report what the run cost:

* **events/sec** — kernel events processed over wall-clock time;
* **wall-clock per simulated hour** — how much real time one simulated
  hour costs at this scale;
* **peak RSS per 1k peak VMs** — the memory footprint the federation's
  state (hosts, VMs, services, series, trace) imposes, normalised by
  fleet size (summed across every worker process under ``--procs``).

Everything is deterministic under ``random_seed``: session profiles come
from :class:`~repro.sim.RandomStreams`, and the kernel replays identically
(``reference=True`` runs the same workload on the heap oracle kernel).

With ``procs > 1`` the federation is sharded: the coordinator runs the
*real* control plane to take every admission decision, then partitions the
sites across a :class:`~repro.sim.ShardPool` of worker processes which
replay those decisions as pinned submissions and simulate their shards in
parallel through epoch barriers. Decision outcomes (admission verdicts,
peak/final fleet, per-site fleet sizes) are identical to ``procs=1`` by
construction — see DESIGN §14 and :func:`verify_against_oracle`.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Optional

from ..cloud import Host, HostType, HypervisorTimings, ImageRepository, VEEM
from ..control import Admitted, ControlPlane, Queued
from ..core.manifest import ManifestBuilder
from ..monitoring import MonitoringAgent
from ..obs.audit import TimeConstraintAuditor, audit_violation_strings
from ..obs.metrics import canonical_view
from ..obs.recorder import FlightRecorder
from ..scenarios.chaos import (
    NetworkPartition,
    install_chaos,
    restrict_event,
    sites_of,
)
from ..scenarios.invariants import check_all
from ..scenarios.workloads import SessionProfile, WORKLOADS, draw_profiles
from ..sim import Environment, read_peak_rss_kb

__all__ = [
    "ScaleConfig",
    "ScaleReport",
    "SessionProfile",
    "run_scale",
    "verify_against_oracle",
]

#: KPI the session drivers publish and the elasticity rules react to.
SESSIONS_KPI = "scale.app.sessions"

#: Simulated seconds the initial fleet gets to deploy before monitoring
#: agents attach and the census starts (shared by both execution modes).
WARMUP_S = 60.0


@dataclass(frozen=True)
class ScaleConfig:
    """Shape of one federation scale run."""

    sites: int = 100
    services: int = 10_000
    hours: float = 1.0
    tenants: int = 8
    #: run the workload on the heap oracle kernel instead of the wheel
    reference: bool = False
    random_seed: int = 2010

    #: worker processes; 1 = the in-process oracle path
    procs: int = 1
    #: simulated seconds between shard barriers under ``procs > 1``
    epoch_s: float = 600.0

    #: session-KPI publication period (per service)
    monitor_period_s: float = 60.0
    #: live-VM census period (peak-fleet tracking)
    sample_period_s: float = 60.0
    #: fraction of services whose burst exceeds the scale-up threshold
    elastic_fraction: float = 0.25
    #: run a defragmenting migration pass (repro.solver.defrag) per site
    #: every this many simulated hours; 0 = off
    defrag_every_h: float = 0.0

    #: homogeneous host/VM shapes (the §6.1.2 testbed host by default)
    host_cpu: float = 4.0
    host_memory_mb: float = 8192.0
    vm_cpu: float = 1.0
    vm_memory_mb: float = 1024.0
    image_mb: float = 64.0
    max_instances: int = 2

    #: named workload generator (repro.scenarios.workloads registry) and
    #: its parameters as sorted (key, value) pairs — tuples so the config
    #: stays frozen/picklable
    workload: str = "baseline"
    workload_params: tuple = ()
    #: chaos events (repro.scenarios.chaos dataclasses) injected during
    #: the run; site-local events are sharded with their sites
    chaos: tuple = ()
    #: extra simulated seconds after the workload window, so in-flight
    #: deploys/heals settle before end-of-run invariant checks
    settle_s: float = 0.0
    #: run the repro.scenarios.invariants suite at end of run (per shard
    #: under ``procs > 1``) and report violations on the ScaleReport
    check_invariants: bool = False
    #: flight-recorder ring capacity (recent trace records kept per
    #: process, dumped on failure); 0 disables the recorder
    flight_recorder: int = 256

    def __post_init__(self) -> None:
        if self.flight_recorder < 0:
            raise ValueError("flight_recorder must be >= 0")
        if self.sites <= 0 or self.services <= 0 or self.hours <= 0:
            raise ValueError("sites, services and hours must be positive")
        if self.tenants <= 0:
            raise ValueError("need at least one tenant")
        if not 0.0 <= self.elastic_fraction <= 1.0:
            raise ValueError("elastic_fraction must be in [0, 1]")
        if self.procs <= 0:
            raise ValueError("procs must be positive")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if self.defrag_every_h < 0:
            raise ValueError("defrag_every_h must be >= 0")
        if self.settle_s < 0:
            raise ValueError("settle_s must be >= 0")
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}; "
                             f"have {sorted(WORKLOADS)}")
        known = {f"site-{s}" for s in range(self.sites)}
        for event in self.chaos:
            if isinstance(event, NetworkPartition) and self.procs > 1:
                # The control plane lives in the coordinator under
                # sharding; a partition there cannot reach the workers.
                raise ValueError(
                    "NetworkPartition chaos requires procs=1")
            unknown = set(sites_of(event)) - known
            if unknown:
                raise ValueError(
                    f"chaos event {event!r} names unknown site(s) "
                    f"{sorted(unknown)}")

    @property
    def duration_s(self) -> float:
        return self.hours * 3600.0

    @property
    def services_per_site(self) -> int:
        return math.ceil(self.services / self.sites)

    @property
    def hosts_per_site(self) -> int:
        """Size each pool so the whole submission's *ceiling* is admissible
        (guaranteed capacity): every service may reach ``max_instances``."""
        per_host = min(int(self.host_cpu // self.vm_cpu),
                       int(self.host_memory_mb // self.vm_memory_mb))
        if per_host < 1:
            raise ValueError("VM shape exceeds the host shape")
        ceiling = self.services_per_site * self.max_instances
        return math.ceil(ceiling / per_host) + 1

    @property
    def host_type(self) -> HostType:
        return HostType(self.host_cpu, self.host_memory_mb)


@dataclass
class ScaleReport:
    """What the run did and what it cost."""

    sites: int
    services: int
    hours: float
    reference: bool
    admitted: int
    queued: int
    rejected: int
    peak_vms: int
    peak_queue_depth: int
    events_processed: int
    dead_skipped: int
    wall_s: float
    peak_rss_kb: int
    procs: int = 1
    final_vms: int = 0
    #: per-site active fleet at the end of the run, in site order —
    #: the decision-outcome fingerprint the oracle comparison uses
    site_fleets: tuple = ()
    #: invariant violations (stringified), when cfg.check_invariants ran
    violations: tuple = ()
    #: federation-wide canonical metric view (owned instruments only,
    #: plane labels stripped) — merged across workers under ``procs > 1``
    metrics: dict = field(default_factory=dict)
    #: time-constraint audit: rule firings checked, late invocations
    audit_findings: int = 0
    audit_violations: tuple = ()
    #: flight-recorder snapshot (recent trace records) when the run ended
    #: with violations; empty otherwise. Not part of decision outcomes.
    flight: tuple = ()

    @property
    def events_per_sec(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s else 0.0

    @property
    def wall_s_per_sim_hour(self) -> float:
        return self.wall_s / self.hours

    @property
    def rss_mb_per_1k_vms(self) -> float:
        """Peak RSS (all processes, interpreters included) per 1000 VMs of
        peak fleet — a coarse, comparable footprint figure."""
        if self.peak_vms <= 0:
            return 0.0
        return (self.peak_rss_kb / 1024.0) / (self.peak_vms / 1000.0)

    def decision_outcomes(self) -> dict:
        """The deterministic decision fingerprint: everything here must be
        bit-identical between ``procs=1`` and any sharded run."""
        return {
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected": self.rejected,
            "peak_vms": self.peak_vms,
            "final_vms": self.final_vms,
            "site_fleets": tuple(self.site_fleets),
            "metrics": dict(self.metrics),
            "audit_findings": self.audit_findings,
            "audit_violations": tuple(self.audit_violations),
        }

    def render(self) -> str:
        kernel = "heap (reference)" if self.reference else "timer wheel"
        mode = (f"{self.procs} worker process(es)" if self.procs > 1
                else "single process")
        lines = [
            f"federation:        {self.sites} site(s), "
            f"{self.services} service(s), {self.hours:g} simulated hour(s)",
            f"kernel:            {kernel}",
            f"execution:         {mode}",
            f"admitted:          {self.admitted} "
            f"(queued {self.queued}, rejected {self.rejected})",
            f"peak VMs:          {self.peak_vms} "
            f"(final {self.final_vms})",
            f"peak queue depth:  {self.peak_queue_depth}",
            f"events processed:  {self.events_processed} "
            f"({self.dead_skipped} dead entries skipped)",
            f"events/sec:        {self.events_per_sec:,.0f}",
            f"wall-clock/sim-h:  {self.wall_s_per_sim_hour:.2f} s",
            f"peak RSS:          {self.peak_rss_kb / 1024:.1f} MB "
            f"({self.rss_mb_per_1k_vms:.1f} MB per 1k VMs)",
        ]
        lines.append(
            f"audit:             {self.audit_findings} rule firing(s), "
            f"{len(self.audit_violations)} late")
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  - {v}" for v in self.violations)
        if self.audit_violations:
            lines.append(
                f"TIME-CONSTRAINT VIOLATIONS "
                f"({len(self.audit_violations)}):")
            lines.extend(f"  - {v}" for v in self.audit_violations)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared building blocks (used by the single-process path, the coordinator
# and — via :mod:`.scale_worker` — the shard worker processes)
# ---------------------------------------------------------------------------

def _scale_manifest(cfg: ScaleConfig):
    """One shared SAP-style manifest: a session-serving ``app`` tier whose
    session KPI drives a scale-up/scale-down rule pair. Sharing the object
    across submissions is deliberate — admission memoisation keys on
    manifest identity."""
    b = ManifestBuilder("sap-session-svc")
    b.component("app", image_mb=cfg.image_mb, cpu=cfg.vm_cpu,
                memory_mb=cfg.vm_memory_mb,
                initial=1, minimum=1, maximum=cfg.max_instances)
    b.kpi("app", "app", SESSIONS_KPI,
          frequency_s=cfg.monitor_period_s, default=30)
    b.rule("up", f"@{SESSIONS_KPI} > 80", "deployVM(app)",
           time_constraint_ms=120_000, cooldown_s=4 * cfg.monitor_period_s)
    # The rules' time constraints set the interpreter's evaluation period
    # (min/2): at 120 s both, each service evaluates once per simulated
    # minute instead of every 2.5 s — the difference between a harness that
    # measures the kernel and one that measures the rule engine.
    b.rule("down", f"@{SESSIONS_KPI} < 20", "undeployVM(app)",
           time_constraint_ms=120_000, cooldown_s=4 * cfg.monitor_period_s)
    return b.build()


def _build_site_veem(env: Environment, cfg: ScaleConfig, name: str,
                     trace) -> VEEM:
    """One site's VEEM with the configured homogeneous host pool."""
    timings = HypervisorTimings(define_s=1.0, boot_s=10.0, shutdown_s=2.0)
    veem = VEEM(env, name=name, trace=trace,
                repository=ImageRepository(bandwidth_mb_per_s=1000.0))
    for h in range(cfg.hosts_per_site):
        veem.add_host(Host(env, f"{name}-h{h}",
                           cpu_cores=cfg.host_cpu,
                           memory_mb=cfg.host_memory_mb,
                           timings=timings))
    return veem


def _session_driver(env, state, profile: SessionProfile, quiet_s: float):
    """Replay one service's session stream.

    A profile with an explicit ``schedule`` is replayed point-for-point
    (piecewise-constant, last level held). Otherwise the classic SAP tide:
    ramp up in steps, hold the peak, drain (a service that scaled up
    drains below the scale-down threshold, releasing its extra VM), then
    settle back to the baseline.
    """
    if profile.schedule:
        last_at = 0.0
        for at_s, level in profile.schedule:
            if at_s > last_at:
                yield env.timeout(at_s - last_at)
                last_at = at_s
            state["sessions"] = level
        return
    yield env.timeout(profile.start_s)
    ramp = profile.ramp
    for level in ramp:
        state["sessions"] = level
        yield env.timeout(profile.hold_s / len(ramp))
    state["sessions"] = profile.drain_level
    yield env.timeout(quiet_s)
    state["sessions"] = 30          # baseline: between both thresholds


def _start_session_driver(env, profile: SessionProfile,
                          cfg: ScaleConfig) -> dict:
    state = {"sessions": 30}
    env.process(
        _session_driver(env, state, profile,
                        quiet_s=6 * cfg.monitor_period_s),
        name=f"sessions:{profile.service_id}")
    return state


def _attach_agent(env, cfg: ScaleConfig, site_manager, service_id: str,
                  state: dict) -> MonitoringAgent:
    agent = MonitoringAgent(env, service_id=service_id, component="app",
                            network=site_manager.network)
    agent.expose(SESSIONS_KPI, lambda s=state: s["sessions"],
                 frequency_s=cfg.monitor_period_s, units="sessions")
    return agent


def _vm_census(env, veems, samples: list, period_s: float):
    """Periodic live-VM census across the given sites.

    Samples are offset by half a period from the census start so they
    fall *between* event instants (VM transitions cluster on the monitor
    grid): the count at each sample time is then independent of
    same-instant event ordering, which is what lets sharded and
    single-process runs agree sample-for-sample. The count itself is the
    O(1) :attr:`~repro.cloud.vmtable.VMTable.active_count` column
    aggregate, not a fleet scan.
    """
    yield env.timeout(period_s / 2.0)
    while True:
        total = 0
        for veem in veems:
            total += veem.table.active_count
        samples.append((env.now, total))
        yield env.timeout(period_s)


def _peak_of(samples: list) -> int:
    return max((total for _t, total in samples), default=0)


def _start_defrag(env, cfg: ScaleConfig, veems, stats: Optional[list] = None):
    """Periodic per-site defragmentation passes (``--defrag-every H``).

    Each site plans (:func:`repro.solver.defrag.plan_defrag`) and executes
    its own migration batch, one site after another within the process so
    the whole pass is deterministic; with admissions all decided at t=0
    and MIGRATING VMs still counted active, the passes are invisible to
    the sharded-vs-oracle decision comparison — workers and oracle run
    the identical per-site plans.
    """
    if cfg.defrag_every_h <= 0:
        return None
    from ..solver.defrag import execute_plan, plan_defrag

    def pass_loop():
        # Quarter-period offset: plan *between* monitor instants (like the
        # census's half-period offset) so a plan never races a same-instant
        # scale event whose ordering could differ between the oracle's
        # all-site environment and a shard's subset environment.
        period_s = cfg.defrag_every_h * 3600.0
        yield env.timeout(cfg.sample_period_s / 4.0)
        while True:
            yield env.timeout(period_s)
            moved = 0
            # Plan every site at this same instant (planning is synchronous,
            # execution runs as per-site processes): a site's plan is a pure
            # function of its own state, never of another site's progress.
            for veem in veems:
                plan = plan_defrag(veem)
                if plan:
                    moved += len(plan.steps)
                    execute_plan(veem, plan)
            if stats is not None:
                stats.append((env.now, moved))

    return env.process(pass_loop(), name="defrag-pass")


# ---------------------------------------------------------------------------
# Admission planning (shared: the single-process run *is* the plan)
# ---------------------------------------------------------------------------

def _submit_all(control: ControlPlane, cfg: ScaleConfig, manifest):
    """Submit every service through the real control plane; returns
    (admitted_requests, admitted, queued, rejected)."""
    admitted = queued = rejected = 0
    admitted_requests = []
    for i in range(cfg.services):
        out = control.submit(f"tenant-{i % cfg.tenants}", manifest,
                             service_id=f"svc-{i}")
        if isinstance(out, Admitted):
            admitted += 1
            admitted_requests.append(out.request)
        elif isinstance(out, Queued):
            queued += 1
        else:
            rejected += 1
    return admitted_requests, admitted, queued, rejected


def _register_tenants(control: ControlPlane, cfg: ScaleConfig) -> None:
    for t in range(cfg.tenants):
        control.register_tenant(f"tenant-{t}", weight=1 + t % 3)


def _draw_profiles(cfg: ScaleConfig, admitted_requests) -> list[SessionProfile]:
    """Draw every admitted service's profile through the workload-generator
    registry (:mod:`repro.scenarios.workloads`). Drawn centrally, in
    admission order, from one seeded stream — the determinism contract
    that makes sharded runs replay the identical workload."""
    return draw_profiles(cfg, admitted_requests)


def _install_chaos(env, cfg: ScaleConfig, site_names, veems,
                   control: Optional[ControlPlane] = None,
                   managers_by_site: Optional[dict] = None) -> None:
    """Install the config's chaos events against the given sites (the
    shard-local subset under ``procs > 1``). Must run before the warm-up
    advance so event timers share the single-process epoch."""
    if not cfg.chaos:
        return
    veems_by_site = dict(zip(site_names, veems))
    owned = set(site_names)
    local = [restricted for event in cfg.chaos
             if (restricted := restrict_event(event, owned)) is not None]
    if not local:
        return
    trace = control.trace if control is not None else veems[0].trace
    install_chaos(env, local, veems_by_site=veems_by_site, control=control,
                  managers_by_site=managers_by_site, trace=trace)


# ---------------------------------------------------------------------------
# Execution: single process (the differential oracle)
# ---------------------------------------------------------------------------

def _run_scale_single(cfg: ScaleConfig, say,
                      profiler=None) -> ScaleReport:
    wall_start = time.perf_counter()
    env = Environment(reference=cfg.reference)
    if profiler is not None:
        profiler.attach(env)
    control = ControlPlane(env)
    recorder = (FlightRecorder(control.trace, cfg.flight_recorder)
                if cfg.flight_recorder > 0 else None)

    say(f"building {cfg.sites} site(s) × {cfg.hosts_per_site} host(s) ...")
    veems = []
    site_names = [f"site-{s}" for s in range(cfg.sites)]
    for name in site_names:
        veem = _build_site_veem(env, cfg, name, control.trace)
        veems.append(veem)
        control.add_site(name, veem)
    _register_tenants(control, cfg)
    _install_chaos(env, cfg, site_names, veems, control=control,
                   managers_by_site={cs.name: cs.manager
                                     for cs in control.sites})

    manifest = _scale_manifest(cfg)
    say(f"submitting {cfg.services} service(s) "
        f"across {cfg.tenants} tenant(s) ...")
    admitted_requests, admitted, queued, rejected = _submit_all(
        control, cfg, manifest)

    # Session tides: every service gets one burst; a seeded fraction bursts
    # past the scale-up threshold and grows its app tier until the tide
    # drains. Profiles are drawn deterministically from the seeded stream.
    profiles = _draw_profiles(cfg, admitted_requests)
    states = [_start_session_driver(env, profile, cfg)
              for profile in profiles]

    say("deploying and wiring monitoring agents ...")
    # Let the initial fleet deploy, then attach one agent per service so
    # the KPI stream flows through each site's monitoring network.
    env.run(until=WARMUP_S)
    site_by_name = {s.name: s for s in control.sites}
    for request, state in zip(admitted_requests, states):
        if request.service is None:
            continue
        site = site_by_name[request.site]
        _attach_agent(env, cfg, site.manager, request.service_id, state)

    samples: list = []
    env.process(_vm_census(env, veems, samples, cfg.sample_period_s),
                name="vm-census")
    _start_defrag(env, cfg, veems)

    say(f"running {cfg.hours:g} simulated hour(s) ...")
    env.run(until=cfg.duration_s + cfg.settle_s)

    violations: tuple = ()
    if cfg.check_invariants:
        say("checking invariants ...")
        violations = tuple(str(v) for v in
                           check_all(control, veems, control.trace,
                                     metrics=env.metrics))

    # §4.2.3 time-constraint audit + the canonical metric view. Same
    # counters, in the same order, as the sharded workers increment —
    # the audit/invariant tallies land in the registry *before* the view
    # is built, exactly as worker snapshots are taken after both.
    audit_report = TimeConstraintAuditor(control.trace).audit()
    audit_violations = tuple(audit_violation_strings(audit_report.findings))
    env.metrics.counter("obs.audit.firings").inc(len(audit_report.findings))
    env.metrics.counter("obs.audit.violations").inc(len(audit_violations))
    metrics_view = canonical_view(env.metrics)

    flight: tuple = ()
    if recorder is not None:
        if violations or audit_violations:
            flight = recorder.snapshot()
        recorder.close()

    wall_s = time.perf_counter() - wall_start
    depth_series = control.series["queue.depth"]
    site_fleets = tuple(
        (f"site-{s}", veems[s].table.active_count)
        for s in range(cfg.sites))
    return ScaleReport(
        sites=cfg.sites, services=cfg.services, hours=cfg.hours,
        reference=cfg.reference,
        admitted=admitted, queued=queued, rejected=rejected,
        peak_vms=_peak_of(samples),
        peak_queue_depth=int(depth_series.maximum()),
        events_processed=env.events_processed,
        dead_skipped=env.dead_skipped,
        wall_s=wall_s, peak_rss_kb=int(read_peak_rss_kb()),
        procs=1,
        final_vms=sum(count for _name, count in site_fleets),
        site_fleets=site_fleets,
        violations=violations,
        metrics=metrics_view,
        audit_findings=len(audit_report.findings),
        audit_violations=audit_violations,
        flight=flight,
    )


# ---------------------------------------------------------------------------
# Execution: sharded across worker processes
# ---------------------------------------------------------------------------

def _run_scale_sharded(cfg: ScaleConfig, say) -> ScaleReport:
    # Imported lazily: scale_worker imports this module for the shared
    # building blocks, so the dependency must stay one-way at import time.
    from ..sim import ShardPool, partition_round_robin
    from .scale_worker import ShardSpec, make_shard

    wall_start = time.perf_counter()

    # Phase 1 — plan admission with the REAL control plane. The planning
    # environment never runs: submission outcomes are decided synchronously
    # at submit() time (there are no capacity releases during a scale run),
    # so hostless sites with explicitly-shaped admission pools reproduce
    # the single-process decisions exactly, without building any host or
    # deploying any VM in the coordinator.
    say(f"planning admission for {cfg.services} service(s) "
        f"across {cfg.sites} site(s) ...")
    plan_env = Environment()
    plan_control = ControlPlane(plan_env)
    site_names = [f"site-{s}" for s in range(cfg.sites)]
    for name in site_names:
        veem = VEEM(plan_env, name=name, trace=plan_control.trace)
        plan_control.add_site(name, veem,
                              pool_hosts=cfg.hosts_per_site,
                              host_type=cfg.host_type)
    _register_tenants(plan_control, cfg)
    manifest = _scale_manifest(cfg)
    admitted_requests, admitted, queued, rejected = _submit_all(
        plan_control, cfg, manifest)
    profiles = _draw_profiles(cfg, admitted_requests)
    depth_series = plan_control.series["queue.depth"]

    # Phase 2 — partition sites round-robin and ship each shard its pinned
    # replay: the admission decisions (site bindings) and session profiles
    # are the only cross-process traffic besides epoch barriers.
    buckets = partition_round_robin(site_names, cfg.procs)
    by_site: dict[str, list[SessionProfile]] = {name: [] for name in site_names}
    for profile in profiles:
        by_site[profile.site].append(profile)
    specs = []
    for shard, bucket in enumerate(buckets):
        shard_profiles = [p for name in bucket for p in by_site[name]]
        shard_profiles.sort(key=lambda p: p.service_index)
        specs.append(ShardSpec(shard=shard, cfg=cfg,
                               site_names=tuple(bucket),
                               profiles=tuple(shard_profiles)))

    say(f"running {cfg.hours:g} simulated hour(s) on "
        f"{cfg.procs} worker process(es), epoch {cfg.epoch_s:g} s ...")
    end = cfg.duration_s + cfg.settle_s
    events_processed = 0
    dead_skipped = 0
    merged_findings: list = []

    def fold_telemetry(report) -> None:
        # Counter deltas, gauge finals and histogram tails from the shard
        # fold into the coordinator's planning registry — which already
        # holds the submission-time counters the workers baselined away —
        # so the union is the same federation-wide view as ``procs=1``.
        if report.metrics:
            plan_env.metrics.merge_snapshot(report.metrics)
        merged_findings.extend(report.findings)

    with ShardPool(make_shard, specs) as pool:
        now = WARMUP_S
        while now < end:
            now = min(now + cfg.epoch_s, end)
            for report in pool.epoch(now):
                fold_telemetry(report)
        finals = pool.stop()

    # Phase 3 — merge: census samples share one time grid across shards,
    # so the federation-wide fleet at each sample is the per-shard sum.
    merged: dict[float, int] = {}
    fleet_by_site: dict[str, int] = {}
    workers_rss_kb = 0
    violations: list = []
    flight_records: list = []
    for report in finals:
        events_processed += report.events_processed
        dead_skipped += report.payload.get("dead_skipped", 0)
        workers_rss_kb += report.peak_rss_kb
        fold_telemetry(report)
        for t, total in report.payload["samples"]:
            merged[t] = merged.get(t, 0) + total
        fleet_by_site.update(report.payload["site_fleets"])
        violations.extend(report.payload.get("violations", ()))
        for rec in report.payload.get("flight", ()):
            flight_records.append(dict(rec, shard=report.shard))
    flight_records.sort(key=lambda r: (r["time"], r["shard"]))
    peak_vms = max(merged.values(), default=0)
    site_fleets = tuple((name, fleet_by_site.get(name, 0))
                        for name in site_names)
    # Workers already incremented (and shipped) the audit counters; the
    # coordinator only renders the union of their findings.
    audit_violations = tuple(audit_violation_strings(merged_findings))
    metrics_view = canonical_view(plan_env.metrics)

    wall_s = time.perf_counter() - wall_start
    return ScaleReport(
        sites=cfg.sites, services=cfg.services, hours=cfg.hours,
        reference=cfg.reference,
        admitted=admitted, queued=queued, rejected=rejected,
        peak_vms=peak_vms,
        peak_queue_depth=int(depth_series.maximum()),
        events_processed=events_processed,
        dead_skipped=dead_skipped,
        wall_s=wall_s,
        peak_rss_kb=int(read_peak_rss_kb()) + workers_rss_kb,
        procs=cfg.procs,
        final_vms=sum(count for _name, count in site_fleets),
        site_fleets=site_fleets,
        violations=tuple(violations),
        metrics=metrics_view,
        audit_findings=len(merged_findings),
        audit_violations=audit_violations,
        flight=tuple(flight_records),
    )


def run_scale(cfg: Optional[ScaleConfig] = None, *,
              progress=None, profiler=None) -> ScaleReport:
    """Run one federation scale sweep and measure it.

    ``profiler`` (a :class:`~repro.obs.profile.SimProfiler`) attaches to
    the kernel for the run; single-process only — a worker's kernel lives
    in another process, out of the hook's reach.
    """
    cfg = cfg or ScaleConfig()
    say = progress or (lambda _msg: None)
    if cfg.procs > 1:
        if profiler is not None:
            raise ValueError("profiling requires procs=1")
        return _run_scale_sharded(cfg, say)
    return _run_scale_single(cfg, say, profiler=profiler)


def verify_against_oracle(cfg: ScaleConfig, *,
                          progress=None) -> tuple[ScaleReport, ScaleReport,
                                                  list[str]]:
    """Run sharded and single-process with the same config; returns both
    reports plus a list of decision-outcome divergences (empty = agree)."""
    if cfg.procs <= 1:
        raise ValueError("verify_against_oracle needs procs > 1")
    sharded = run_scale(cfg, progress=progress)
    oracle = run_scale(dataclasses.replace(cfg, procs=1),
                       progress=progress)
    ours = sharded.decision_outcomes()
    theirs = oracle.decision_outcomes()
    divergences = [
        f"{key}: sharded={ours[key]!r} oracle={theirs[key]!r}"
        for key in theirs
        if ours[key] != theirs[key]
    ]
    return sharded, oracle, divergences
