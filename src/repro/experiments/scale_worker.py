"""Shard worker for the sharded scale harness (spawn-safe module).

Each worker process owns one shard of the federation: it rebuilds its
sites (hosts included), replays the coordinator's admission decisions as
*pinned* submissions through a local :class:`~repro.control.ControlPlane`,
drives the shipped session profiles, and advances its private kernel
between epoch barriers. Everything here is module-level and every spec
field is picklable — the ``spawn`` start method imports this module fresh
in the child.

A pinned replay that does not come back :class:`~repro.control.Admitted`
is an oracle divergence (the worker's per-site admission state no longer
matches the coordinator's plan) and raises immediately — surfaced to the
coordinator as a :class:`~repro.sim.ShardError`.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from ..control import Admitted, ControlPlane
from ..obs.audit import TimeConstraintAuditor, audit_violation_strings
from ..obs.metrics import SnapshotCursor
from ..obs.recorder import FlightRecorder
from ..scenarios.invariants import check_all
from ..sim import Environment, EpochReport, read_peak_rss_kb
from .scale import (
    WARMUP_S,
    ScaleConfig,
    SessionProfile,
    _attach_agent,
    _build_site_veem,
    _install_chaos,
    _scale_manifest,
    _start_defrag,
    _start_session_driver,
    _vm_census,
)

__all__ = ["ShardSpec", "ScaleShard", "make_shard"]


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs: its sites and the pinned replay
    (profiles carry the admission decisions' site bindings, in global
    submission order restricted to this shard)."""

    shard: int
    cfg: ScaleConfig
    site_names: tuple[str, ...]
    profiles: tuple[SessionProfile, ...]


class ScaleShard:
    """One shard's private simulation, driven through epoch barriers."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        cfg = spec.cfg
        self.env = Environment(reference=cfg.reference)
        self.control = ControlPlane(self.env)
        self.recorder = (
            FlightRecorder(self.control.trace, cfg.flight_recorder)
            if cfg.flight_recorder > 0 else None)
        self.veems = []
        for name in spec.site_names:
            veem = _build_site_veem(self.env, cfg, name, self.control.trace)
            self.veems.append(veem)
            self.control.add_site(name, veem)
        for t in range(cfg.tenants):
            self.control.register_tenant(f"tenant-{t}", weight=1 + t % 3)

        # Pinned replay of the coordinator's admission decisions. Per-site
        # admission state sees the same manifests in the same order as the
        # coordinator's global pass restricted to this shard, so every
        # replay must admit; anything else is an oracle divergence.
        manifest = _scale_manifest(cfg)
        self.requests = []
        self.states = []
        for profile in spec.profiles:
            outcome = self.control.submit(
                profile.tenant, manifest,
                service_id=profile.service_id, site=profile.site)
            if not isinstance(outcome, Admitted):
                raise RuntimeError(
                    f"shard {spec.shard}: pinned replay of "
                    f"{profile.service_id} on {profile.site} was not "
                    f"admitted: {outcome!r}")
            self.requests.append(outcome.request)
            self.states.append(_start_session_driver(self.env, profile, cfg))

        # Telemetry baseline: the pinned replay just re-incremented the
        # submission counters the coordinator's planning registry already
        # holds, so the first (discarded) snapshot excludes them from every
        # shipped delta. Taken before chaos install and warm-up — those
        # run in the coordinator-free part of the timeline and must ship.
        self._cursor = SnapshotCursor()
        self._cursor.snapshot(self.env.metrics)
        self._audit_cursor = 0
        self._audit_violated = False

        # Chaos must be installed before any kernel advance so its delays
        # line up with the oracle's (timeouts are relative to install time).
        # Events are restricted to this shard's sites inside the helper.
        _install_chaos(
            self.env, cfg, spec.site_names, self.veems,
            control=self.control,
            managers_by_site={cs.name: cs.manager
                              for cs in self.control.sites})

        # Same warm-up as the oracle: deploy the initial fleet, then wire
        # the monitoring agents and start the census on the shared grid.
        self.env.run(until=WARMUP_S)
        site_by_name = {s.name: s for s in self.control.sites}
        for profile, request, state in zip(spec.profiles, self.requests,
                                           self.states):
            if request.service is None:
                continue
            site = site_by_name[profile.site]
            _attach_agent(self.env, cfg, site.manager,
                          profile.service_id, state)
        self.samples: list = []
        self.env.process(
            _vm_census(self.env, self.veems, self.samples,
                       cfg.sample_period_s),
            name=f"vm-census:shard-{spec.shard}")
        # Same defrag cadence as the oracle: each site's pass is a pure
        # function of its own state, so shard and oracle plans coincide.
        _start_defrag(self.env, cfg, self.veems)

    def _audit_epoch(self) -> tuple:
        """Audit the rule firings closed since the last barrier, exactly
        once: firings open and close within one dispatch, so every firing
        visible here is final, and the span-id cursor never re-audits one.
        The union across epochs equals a single end-of-run audit."""
        report = TimeConstraintAuditor(self.control.trace).audit(
            min_span_id=self._audit_cursor)
        spans = self.control.trace.spans
        if spans:
            self._audit_cursor = max(spans) + 1
        late = audit_violation_strings(report.findings)
        if late:
            self._audit_violated = True
        metrics = self.env.metrics
        metrics.counter("obs.audit.firings").inc(len(report.findings))
        metrics.counter("obs.audit.violations").inc(len(late))
        return tuple(report.findings)

    def _crash_dump(self, exc: BaseException):
        """Dump the flight ring before the traceback crosses the pipe; the
        dump path rides in the chained error so the coordinator's
        ShardError names it."""
        if self.recorder is None:
            raise exc
        path = os.path.join(
            tempfile.gettempdir(),
            f"repro-flight-shard{self.spec.shard}-pid{os.getpid()}.jsonl")
        try:
            self.recorder.dump(path, reason=repr(exc))
        except OSError:
            raise exc from None
        raise RuntimeError(
            f"shard {self.spec.shard} failed; flight recorder dumped to "
            f"{path}") from exc

    def run_epoch(self, until: float) -> EpochReport:
        try:
            self.env.run(until=until)
            findings = self._audit_epoch()
            snapshot = self._cursor.snapshot(self.env.metrics)
        except Exception as exc:
            self._crash_dump(exc)
        return EpochReport(
            shard=self.spec.shard, now=self.env.now,
            events_processed=self.env.events_processed,
            metrics=snapshot, findings=findings)

    def finish(self) -> EpochReport:
        try:
            return self._finish()
        except Exception as exc:
            self._crash_dump(exc)

    def _finish(self) -> EpochReport:
        # Residual firings since the last epoch barrier, then invariants
        # (their violation tally lands in the registry), then the metric
        # snapshot LAST so every increment ships.
        findings = self._audit_epoch()
        site_fleets = [
            (name, veem.table.active_count)
            for name, veem in zip(self.spec.site_names, self.veems)
        ]
        payload = {
            "samples": self.samples,
            "site_fleets": site_fleets,
            "dead_skipped": self.env.dead_skipped,
        }
        violations: list = []
        if self.spec.cfg.check_invariants:
            violations = [
                str(v) for v in check_all(self.control, self.veems,
                                          self.control.trace,
                                          metrics=self.env.metrics)]
            payload["violations"] = violations
        if self.recorder is not None and (violations
                                          or self._audit_violated):
            payload["flight"] = self.recorder.snapshot()
        return EpochReport(
            shard=self.spec.shard, now=self.env.now,
            events_processed=self.env.events_processed,
            peak_rss_kb=read_peak_rss_kb(),
            metrics=self._cursor.snapshot(self.env.metrics),
            findings=findings,
            payload=payload)


def make_shard(spec: ShardSpec) -> ScaleShard:
    """Factory handed to :class:`~repro.sim.ShardPool` (module-level so the
    spawn pickler ships it by reference)."""
    return ScaleShard(spec)
