"""The polymorph-search (organic crystal structure prediction) workload.

§6: "The selected service is a grid based application responsible for the
computational prediction of organic crystal structures from the chemical
diagram" — MOLPAK/DMAREL-style Fortran programs orchestrated by BPEL.

§6.1.3 defines the shape for the evaluated input: "two long running jobs
will first be submitted, followed by an additional set of 200 jobs being
spawned with each completion to further refine the input. We must also take
into account the additional processing time involved in orchestrating the
service and gathering outputs."

The two seed jobs have deliberately different durations so the two 200-job
refinement batches land staggered, producing the two queue spikes visible in
Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import RandomStreams, lognormal_from_mean_cv
from .jobs import Job
from .workflow import (
    ForEachCompletion,
    Invoke,
    Sequence,
    SubmitJobs,
    WaitForJobs,
    Workflow,
    WorkflowContext,
)

__all__ = ["PolymorphSearchConfig", "build_polymorph_workflow"]


@dataclass(frozen=True)
class PolymorphSearchConfig:
    """Workload parameters, calibrated so the dedicated 16-node baseline's
    turn-around lands near the paper's 8605 s (Table 3)."""

    #: durations of the two seed (MOLPAK coarse-search) jobs, seconds
    seed_durations_s: tuple[float, ...] = (3180.0, 4600.0)
    #: refinement (DMAREL minimisation) jobs spawned per seed completion
    refinements_per_seed: int = 200
    #: mean / coefficient-of-variation of refinement job duration
    refinement_mean_s: float = 195.0
    refinement_cv: float = 0.30
    #: input collection + workflow setup before the seeds are submitted
    setup_s: float = 60.0
    #: result processing / page rendering after the last job completes
    gather_s: float = 120.0
    #: per-batch generation service call before submitting refinements
    generate_s: float = 30.0
    #: file-transfer sizes (MB)
    seed_input_mb: float = 50.0
    refinement_input_mb: float = 8.0
    refinement_output_mb: float = 4.0
    #: RNG seed for refinement-duration sampling
    random_seed: int = 42

    def __post_init__(self) -> None:
        if not self.seed_durations_s:
            raise ValueError("need at least one seed job")
        if any(d <= 0 for d in self.seed_durations_s):
            raise ValueError("seed durations must be positive")
        if self.refinements_per_seed < 0:
            raise ValueError("refinements_per_seed must be non-negative")
        if self.refinement_mean_s <= 0 or self.refinement_cv < 0:
            raise ValueError("bad refinement duration parameters")

    @property
    def total_jobs(self) -> int:
        return len(self.seed_durations_s) * (1 + self.refinements_per_seed)


@dataclass
class PolymorphRun:
    """Handle returned by :func:`build_polymorph_workflow`."""

    workflow: Workflow
    config: PolymorphSearchConfig
    #: filled in as batches are generated, for assertions/diagnostics
    batches: list[list[Job]] = field(default_factory=list)


def build_polymorph_workflow(config: PolymorphSearchConfig | None = None,
                             ) -> PolymorphRun:
    """Assemble the §6 evaluation workflow as a BPEL-style activity tree.

    Structure::

        Sequence(
          Invoke(collect-inputs),
          SubmitJobs(seeds),
          ForEachCompletion(seed →
              Sequence(Invoke(generate-batch), SubmitJobs(batch), WaitForJobs)),
          WaitForJobs(seeds),            # seeds themselves must be done too
          Invoke(gather-results))
    """
    config = config or PolymorphSearchConfig()
    streams = RandomStreams(config.random_seed)
    run = PolymorphRun(workflow=None, config=config)  # type: ignore[arg-type]

    def make_seeds(ctx: WorkflowContext) -> list[Job]:
        return [
            Job(duration_s=d, name=f"seed-{i}",
                input_mb=config.seed_input_mb,
                tags={"phase": "seed", "seed_index": i})
            for i, d in enumerate(config.seed_durations_s)
        ]

    def make_refinements(seed: Job):
        rng = streams.stream(f"refine-{seed.tags['seed_index']}")

        def factory(ctx: WorkflowContext) -> list[Job]:
            batch = [
                Job(
                    duration_s=lognormal_from_mean_cv(
                        rng, config.refinement_mean_s, config.refinement_cv),
                    name=f"refine-{seed.tags['seed_index']}-{j}",
                    input_mb=config.refinement_input_mb,
                    output_mb=config.refinement_output_mb,
                    tags={"phase": "refine",
                          "seed_index": seed.tags["seed_index"]},
                )
                for j in range(config.refinements_per_seed)
            ]
            run.batches.append(batch)
            return batch

        batch_var = f"refinements-{seed.tags['seed_index']}"
        return Sequence(
            Invoke(f"generate-batch-{seed.tags['seed_index']}",
                   duration_s=config.generate_s),
            SubmitJobs(f"refinements-of-{seed.name}", factory,
                       result_var=batch_var),
            WaitForJobs(batch_var),
        )

    root = Sequence(
        Invoke("collect-inputs", duration_s=config.setup_s),
        SubmitJobs("seed-jobs", make_seeds, result_var="seeds"),
        ForEachCompletion("seeds", make_refinements),
        WaitForJobs("seeds"),
        Invoke("gather-results", duration_s=config.gather_s),
    )
    run.workflow = Workflow("polymorph-search", root)
    return run
