"""The Condor-like scheduler (schedd) with matchmaking.

§6.1.1: "Requests are authenticated, processed and delegated to a Condor
scheduler, which will maintain a queue of jobs and manage their execution on
a collection of available remote execution nodes. It will match jobs to
execution nodes according to workload and other characteristics ... Once a
target node has been selected it will transfer binary and input files over
and remotely monitor the execution of the job."

The scheduler exposes the KPI the evaluation's elasticity rule consumes:
``queue_size`` — the number of *idle* jobs ("there are more than 4 idle jobs
in the queue", §6.1.2) — plus node-availability counters used by the
scale-down path. Matchmaking is event-driven (job arrival / node
availability) with a small negotiation latency per match.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..sim import Environment, Interrupt, SeriesRecorder, TraceLog
from .jobs import Job, JobState

__all__ = ["CondorScheduler", "ExecutionNodeHandle"]


class ExecutionNodeHandle:
    """The schedd's view of one registered startd (execution node).

    One job per node at a time (§6.1.1: "Each node runs only a single job at
    a time"). ``draining`` nodes accept no new work and deregister when idle.
    """

    def __init__(self, name: str, *, transfer_mb_per_s: float = 50.0,
                 attributes: Optional[dict] = None):
        if transfer_mb_per_s <= 0:
            raise ValueError("transfer rate must be positive")
        self.name = name
        self.transfer_mb_per_s = float(transfer_mb_per_s)
        #: ClassAd-style machine attributes advertised to the schedd
        #: (cpus, memory_mb, arch, has_gpu, ...)
        self.attributes = dict(attributes or {})
        self.current_job: Optional[Job] = None
        self.draining = False
        self.registered_at: Optional[float] = None
        self.jobs_completed = 0
        #: the in-flight _run_job process, interrupted on node failure
        self._runner = None
        #: invoked when the node finishes draining (scheduler deregisters it)
        self.on_drained: Optional[Callable[["ExecutionNodeHandle"], None]] = None

    @property
    def busy(self) -> bool:
        return self.current_job is not None

    @property
    def available(self) -> bool:
        return not self.busy and not self.draining

    def satisfies(self, requirements: dict) -> bool:
        """ClassAd-style match: numeric requirements are minimums, all
        other values must be equal; a missing attribute never matches."""
        for key, wanted in requirements.items():
            have = self.attributes.get(key)
            if have is None:
                return False
            if isinstance(wanted, bool) or isinstance(have, bool):
                # Bools compare only with bools: True must not satisfy a
                # numeric minimum of 1 (Python would say 1 == True).
                if not (isinstance(wanted, bool) and isinstance(have, bool)
                        and have == wanted):
                    return False
            elif isinstance(wanted, (int, float)) and isinstance(
                    have, (int, float)):
                if have < wanted:
                    return False
            elif have != wanted:
                return False
        return True

    def __repr__(self) -> str:
        state = ("draining" if self.draining
                 else "busy" if self.busy else "idle")
        return f"<Node {self.name} {state}>"


class CondorScheduler:
    """Queue, matchmaking loop and execution monitoring."""

    def __init__(self, env: Environment, *, name: str = "schedd",
                 match_delay_s: float = 1.0,
                 trace: Optional[TraceLog] = None,
                 series: Optional[SeriesRecorder] = None):
        if match_delay_s < 0:
            raise ValueError("match delay must be non-negative")
        self.env = env
        self.name = name
        self.match_delay_s = match_delay_s
        self.trace = trace if trace is not None else TraceLog(env)
        self.series = series if series is not None else SeriesRecorder(env)
        self.idle_jobs: deque[Job] = deque()
        self.all_jobs: list[Job] = []
        self.nodes: dict[str, ExecutionNodeHandle] = {}
        self._match_pending = False
        # Time series for Fig. 11: queued jobs and registered nodes.
        self.series.record("queue_size", 0)
        self.series.record("nodes_registered", 0)

    # ------------------------------------------------------------------
    # KPIs (what the monitoring agent publishes)
    # ------------------------------------------------------------------
    @property
    def queue_size(self) -> int:
        """Idle jobs awaiting a node — ``uk.ucl.condor.schedd.queuesize``."""
        return len(self.idle_jobs)

    @property
    def node_count(self) -> int:
        """Registered nodes — ``uk.ucl.condor.exec.instances.size``."""
        return len(self.nodes)

    @property
    def idle_node_count(self) -> int:
        return sum(1 for n in self.nodes.values() if n.available)

    @property
    def running_jobs(self) -> int:
        return sum(1 for n in self.nodes.values() if n.busy)

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        if job.state is not JobState.IDLE or job.submitted_at is not None:
            raise ValueError(f"job {job.job_id} is not freshly idle")
        job.bind(self.env)
        self.idle_jobs.append(job)
        self.all_jobs.append(job)
        self.series.record("queue_size", self.queue_size)
        self.trace.emit(self.name, "job.submit", job=job.job_id, name=job.name)
        self._schedule_matchmaking()
        return job

    def submit_many(self, jobs: list[Job]) -> list[Job]:
        for job in jobs:
            self.submit(job)
        return jobs

    def remove(self, job: Job) -> None:
        """Withdraw an idle job from the queue (condor_rm)."""
        if job in self.idle_jobs:
            self.idle_jobs.remove(job)
            job.state = JobState.REMOVED
            self.series.record("queue_size", self.queue_size)
            self.trace.emit(self.name, "job.removed", job=job.job_id)
        else:
            raise ValueError(f"job {job.job_id} is not idle")

    # ------------------------------------------------------------------
    # Node registration (startd advertising)
    # ------------------------------------------------------------------
    def register_node(self, node: ExecutionNodeHandle) -> None:
        if node.name in self.nodes:
            raise ValueError(f"node {node.name!r} already registered")
        node.registered_at = self.env.now
        node.draining = False
        self.nodes[node.name] = node
        self.series.record("nodes_registered", self.node_count)
        self.trace.emit(self.name, "node.register", node=node.name)
        self._schedule_matchmaking()

    def deregister_node(self, node: ExecutionNodeHandle) -> None:
        if node.name not in self.nodes:
            raise ValueError(f"node {node.name!r} not registered")
        if node.busy:
            raise ValueError(
                f"node {node.name!r} is busy; drain it instead"
            )
        del self.nodes[node.name]
        self.series.record("nodes_registered", self.node_count)
        self.trace.emit(self.name, "node.deregister", node=node.name)

    def drain_node(self, node: ExecutionNodeHandle) -> None:
        """Stop assigning work; deregister as soon as the node is idle."""
        if node.name not in self.nodes:
            raise ValueError(f"node {node.name!r} not registered")
        node.draining = True
        self.trace.emit(self.name, "node.drain", node=node.name,
                        busy=node.busy)
        if not node.busy:
            self._finish_drain(node)

    def node_failed(self, node: ExecutionNodeHandle) -> None:
        """Abrupt node loss (its VM crashed): deregister immediately and
        requeue whatever it was running — Condor reschedules interrupted
        jobs on other machines."""
        if node.name not in self.nodes:
            return  # never registered, or already gone
        del self.nodes[node.name]
        self.series.record("nodes_registered", self.node_count)
        job = node.current_job
        node.current_job = None
        if node._runner is not None and node._runner.is_alive:
            node._runner.interrupt("node failed")
        self.trace.emit(self.name, "node.failed", node=node.name,
                        requeued=job.job_id if job else None)
        if job is not None:
            job.requeue()
            self.idle_jobs.appendleft(job)  # retries jump the queue
            self.series.record("queue_size", self.queue_size)
            self._schedule_matchmaking()

    def pick_node_to_drain(self) -> Optional[ExecutionNodeHandle]:
        """Scale-down helper: prefer an idle node; else the most recently
        registered busy one; never a node already draining."""
        candidates = [n for n in self.nodes.values() if not n.draining]
        if not candidates:
            return None
        idle = [n for n in candidates if not n.busy]
        if idle:
            return max(idle, key=lambda n: n.registered_at)
        return max(candidates, key=lambda n: n.registered_at)

    def _finish_drain(self, node: ExecutionNodeHandle) -> None:
        self.deregister_node(node)
        if node.on_drained is not None:
            node.on_drained(node)

    # ------------------------------------------------------------------
    # Matchmaking
    # ------------------------------------------------------------------
    def _schedule_matchmaking(self) -> None:
        if self._match_pending:
            return
        self._match_pending = True
        self.env.process(self._negotiate(), name=f"{self.name}:negotiate")

    def _negotiate(self):
        if self.match_delay_s > 0:
            yield self.env.timeout(self.match_delay_s)
        self._match_pending = False
        # Scan the queue in order; a job whose requirements no available
        # node satisfies is skipped (it stays idle) without starving the
        # jobs behind it — Condor's negotiation behaves the same way.
        unmatched: deque[Job] = deque()
        progressed = False
        while self.idle_jobs:
            job = self.idle_jobs.popleft()
            node = next(
                (n for n in self.nodes.values()
                 if n.available and n.satisfies(job.requirements)), None)
            if node is None:
                unmatched.append(job)
                continue
            progressed = True
            node.current_job = job
            self.series.record("queue_size", self.queue_size)
            self.trace.emit(self.name, "job.match", job=job.job_id,
                            node=node.name)
            node._runner = self.env.process(self._run_job(job, node),
                                            name=f"run:{job.job_id}")
        # Preserve queue order for the jobs that found no machine.
        while unmatched:
            self.idle_jobs.appendleft(unmatched.pop())
        if progressed:
            self.series.record("queue_size", self.queue_size)

    def _run_job(self, job: Job, node: ExecutionNodeHandle):
        try:
            job.mark_transferring(node.name)
            yield self.env.timeout(job.input_mb / node.transfer_mb_per_s)
            job.mark_running(self.env)
            self.trace.emit(self.name, "job.start", job=job.job_id,
                            node=node.name)
            yield self.env.timeout(job.duration_s)
            yield self.env.timeout(job.output_mb / node.transfer_mb_per_s)
        except Interrupt:
            # node_failed() already requeued the job; just stop.
            return
        job.mark_completed(self.env)
        node.jobs_completed += 1
        node.current_job = None
        node._runner = None
        self.trace.emit(self.name, "job.complete", job=job.job_id,
                        node=node.name, turnaround=job.turnaround)
        if node.draining:
            self._finish_drain(node)
        else:
            self._schedule_matchmaking()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def completed_jobs(self) -> list[Job]:
        return [j for j in self.all_jobs if j.state is JobState.COMPLETED]

    @property
    def all_done(self) -> bool:
        return all(j.state in (JobState.COMPLETED, JobState.FAILED,
                               JobState.REMOVED)
                   for j in self.all_jobs)

    def mean_queue_wait(self) -> Optional[float]:
        waits = [j.queue_wait for j in self.completed_jobs()
                 if j.queue_wait is not None]
        return sum(waits) / len(waits) if waits else None
