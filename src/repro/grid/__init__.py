"""Condor-like grid substrate and BPEL-style orchestration.

The evaluation application's stack (§6.1.1): a scheduler maintaining a job
queue and matchmaking against registered execution nodes
(:mod:`~repro.grid.scheduler`), execution services whose registration is tied
to VM lifecycle (:mod:`~repro.grid.execution`), an orchestration engine
(:mod:`~repro.grid.workflow`) and the polymorph-search workload
(:mod:`~repro.grid.polymorph`).
"""

from .execution import CondorExecDriver, ExecutionService, VirtualCluster
from .jobs import Job, JobState
from .polymorph import PolymorphSearchConfig, build_polymorph_workflow
from .scheduler import CondorScheduler, ExecutionNodeHandle
from .workflow import (
    Activity,
    Delay,
    Flow,
    ForEachCompletion,
    Invoke,
    Sequence,
    SubmitJobs,
    WaitForJobs,
    Workflow,
    WorkflowContext,
)

__all__ = [
    "CondorExecDriver",
    "ExecutionService",
    "VirtualCluster",
    "Job",
    "JobState",
    "PolymorphSearchConfig",
    "build_polymorph_workflow",
    "CondorScheduler",
    "ExecutionNodeHandle",
    "Activity",
    "Delay",
    "Flow",
    "ForEachCompletion",
    "Invoke",
    "Sequence",
    "SubmitJobs",
    "WaitForJobs",
    "Workflow",
    "WorkflowContext",
]
