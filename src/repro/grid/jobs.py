"""Batch jobs for the Condor-like grid substrate.

The evaluation application runs "up to 7200 executions of these programs ...
as batch jobs, in both sequential and parallel form" (§6); for the selected
input, "two long running jobs will first be submitted, followed by an
additional set of 200 jobs being spawned with each completion" (§6.1.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim import Environment, Event

__all__ = ["JobState", "Job"]

_job_seq = itertools.count(1)


class JobState(enum.Enum):
    """Condor-style job states."""

    IDLE = "idle"              # queued, awaiting matchmaking
    TRANSFERRING = "transferring"  # input files moving to the node
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    REMOVED = "removed"        # withdrawn from the queue


@dataclass
class Job:
    """One batch job: execution demand plus transfer sizes.

    ``duration_s`` is the pure execution time on a node; input/output sizes
    feed the scheduler's file-transfer model ("Once a target node has been
    selected it will transfer binary and input files over", §6.1.1).
    """

    duration_s: float
    name: str = ""
    input_mb: float = 10.0
    output_mb: float = 5.0
    #: ClassAd-style requirements the execution node must satisfy:
    #: numeric entries are minimums (node value ≥ requirement), everything
    #: else must match exactly — "match jobs to execution nodes according to
    #: workload and other characteristics (CPU, memory, etc.)" (§6.1.1)
    requirements: dict[str, Any] = field(default_factory=dict)
    #: arbitrary workload annotations (batch id, phase, ...)
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("job duration must be positive")
        if self.input_mb < 0 or self.output_mb < 0:
            raise ValueError("transfer sizes must be non-negative")
        self.job_id = f"job-{next(_job_seq)}"
        if not self.name:
            self.name = self.job_id
        self.state = JobState.IDLE
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.node_name: Optional[str] = None
        self.on_complete: Optional[Event] = None  # bound at submit time

    # -- lifecycle hooks used by the scheduler --------------------------------
    def bind(self, env: Environment) -> None:
        self.submitted_at = env.now
        self.on_complete = env.event()

    def mark_transferring(self, node_name: str) -> None:
        self.state = JobState.TRANSFERRING
        self.node_name = node_name

    def mark_running(self, env: Environment) -> None:
        self.state = JobState.RUNNING
        self.started_at = env.now

    def mark_completed(self, env: Environment) -> None:
        self.state = JobState.COMPLETED
        self.completed_at = env.now
        if self.on_complete is not None and not self.on_complete.triggered:
            self.on_complete.succeed(self)

    def mark_failed(self, env: Environment, reason: str = "") -> None:
        self.state = JobState.FAILED
        self.completed_at = env.now
        if self.on_complete is not None and not self.on_complete.triggered:
            self.on_complete.fail(RuntimeError(
                f"job {self.job_id} failed: {reason or 'unknown'}"
            ))

    def requeue(self) -> None:
        """Return an evicted job to the idle state for re-matching."""
        self.state = JobState.IDLE
        self.node_name = None
        self.started_at = None

    # -- metrics ---------------------------------------------------------------
    @property
    def queue_wait(self) -> Optional[float]:
        if self.started_at is None or self.submitted_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def turnaround(self) -> Optional[float]:
        if self.completed_at is None or self.submitted_at is None:
            return None
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:
        return f"<Job {self.name} {self.state.value} dur={self.duration_s:.0f}s>"
