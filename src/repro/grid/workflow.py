"""A BPEL-like orchestration engine.

§6.1.1: "The Business Process Execution Language (BPEL) is used to coordinate
the overall execution of the polymorph search, relying on external services
to generate batch jobs, submit the jobs for execution, process the results
and trigger new computations if required."

The engine executes an activity tree — sequences, parallel flows (BPEL
``<flow>``), service invocations with processing delays, job submissions,
joins on job completion, and callback-driven fan-out ("trigger new
computations") — on the simulation kernel. It is intentionally small but
structured like the real thing, so example applications read like BPEL
process definitions.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional, Sequence

from ..sim import Environment, TraceLog
from .jobs import Job
from .scheduler import CondorScheduler

__all__ = [
    "WorkflowContext",
    "Activity",
    "Invoke",
    "Delay",
    "SubmitJobs",
    "WaitForJobs",
    "Sequence",
    "Flow",
    "ForEachCompletion",
    "Workflow",
]


class WorkflowContext:
    """Shared state flowing through a workflow execution."""

    def __init__(self, env: Environment, scheduler: CondorScheduler,
                 trace: Optional[TraceLog] = None):
        self.env = env
        self.scheduler = scheduler
        self.trace = trace if trace is not None else scheduler.trace
        #: free-form slots activities read/write (like BPEL variables)
        self.variables: dict[str, Any] = {}
        #: every job this workflow submitted
        self.jobs: list[Job] = []


class Activity(abc.ABC):
    """One node of the activity tree."""

    @abc.abstractmethod
    def execute(self, ctx: WorkflowContext):
        """Generator run on the sim kernel; yields kernel events."""

    def _emit(self, ctx: WorkflowContext, kind: str, **details: Any) -> None:
        ctx.trace.emit("bpel", kind, activity=type(self).__name__, **details)


class Invoke(Activity):
    """Call an external web service: a processing delay plus a side effect.

    ``action(ctx)`` runs after the delay and may return a value stored in
    ``ctx.variables[result_var]``.
    """

    def __init__(self, name: str, *, duration_s: float = 1.0,
                 action: Optional[Callable[[WorkflowContext], Any]] = None,
                 result_var: Optional[str] = None):
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.name = name
        self.duration_s = duration_s
        self.action = action
        self.result_var = result_var

    def execute(self, ctx: WorkflowContext):
        self._emit(ctx, "invoke.start", name=self.name)
        if self.duration_s > 0:
            yield ctx.env.timeout(self.duration_s)
        result = self.action(ctx) if self.action is not None else None
        if self.result_var is not None:
            ctx.variables[self.result_var] = result
        self._emit(ctx, "invoke.done", name=self.name)
        return result


class Delay(Activity):
    """BPEL ``<wait>``."""

    def __init__(self, duration_s: float):
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.duration_s = duration_s

    def execute(self, ctx: WorkflowContext):
        yield ctx.env.timeout(self.duration_s)


class SubmitJobs(Activity):
    """Generate and submit a batch of jobs; stores them in a variable."""

    def __init__(self, name: str,
                 job_factory: Callable[[WorkflowContext], Sequence[Job]],
                 *, result_var: str = "jobs"):
        self.name = name
        self.job_factory = job_factory
        self.result_var = result_var

    def execute(self, ctx: WorkflowContext):
        jobs = list(self.job_factory(ctx))
        ctx.scheduler.submit_many(jobs)
        ctx.jobs.extend(jobs)
        ctx.variables[self.result_var] = jobs
        self._emit(ctx, "jobs.submitted", name=self.name, count=len(jobs))
        return jobs
        yield  # pragma: no cover - marks this as a generator


class WaitForJobs(Activity):
    """Join on the completion of every job in a variable."""

    def __init__(self, jobs_var: str = "jobs"):
        self.jobs_var = jobs_var

    def execute(self, ctx: WorkflowContext):
        jobs = ctx.variables.get(self.jobs_var, [])
        if jobs:
            yield ctx.env.all_of([j.on_complete for j in jobs])
        self._emit(ctx, "jobs.joined", count=len(jobs))


class Sequence(Activity):
    """Run child activities one after another."""

    def __init__(self, *activities: Activity):
        self.activities = list(activities)

    def execute(self, ctx: WorkflowContext):
        result = None
        for activity in self.activities:
            result = yield ctx.env.process(
                activity.execute(ctx), name=type(activity).__name__)
        return result


class Flow(Activity):
    """Run child activities in parallel; completes when all complete."""

    def __init__(self, *activities: Activity):
        self.activities = list(activities)

    def execute(self, ctx: WorkflowContext):
        branches = [
            ctx.env.process(a.execute(ctx), name=type(a).__name__)
            for a in self.activities
        ]
        if branches:
            yield ctx.env.all_of(branches)


class ForEachCompletion(Activity):
    """Fan-out: as each job in ``jobs_var`` completes, run a follow-up
    activity built from the finished job — "trigger new computations if
    required". Completes when every follow-up has completed.
    """

    def __init__(self, jobs_var: str,
                 follow_up: Callable[[Job], Activity]):
        self.jobs_var = jobs_var
        self.follow_up = follow_up

    def execute(self, ctx: WorkflowContext):
        jobs = list(ctx.variables.get(self.jobs_var, []))

        def branch(job: Job):
            yield job.on_complete
            activity = self.follow_up(job)
            yield ctx.env.process(activity.execute(ctx),
                                  name=f"followup:{job.job_id}")

        branches = [
            ctx.env.process(branch(job), name=f"watch:{job.job_id}")
            for job in jobs
        ]
        if branches:
            yield ctx.env.all_of(branches)


class Workflow:
    """A named root activity plus execution bookkeeping."""

    def __init__(self, name: str, root: Activity):
        self.name = name
        self.root = root
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def run(self, ctx: WorkflowContext):
        """Process: execute the whole tree; returns when it completes."""
        self.started_at = ctx.env.now
        ctx.trace.emit("bpel", "workflow.start", workflow=self.name)
        yield ctx.env.process(self.root.execute(ctx), name=self.name)
        self.finished_at = ctx.env.now
        ctx.trace.emit("bpel", "workflow.done", workflow=self.name,
                       turnaround=self.turnaround)

    def start(self, ctx: WorkflowContext):
        """Launch on the kernel; returns the Process to join on."""
        return ctx.env.process(self.run(ctx), name=f"workflow:{self.name}")

    @property
    def turnaround(self) -> Optional[float]:
        """§6.1.3: time from the user's request to results displayed."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at
