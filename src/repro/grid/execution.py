"""Condor execution services bound to VM lifecycles.

§6.1.1: "The last type of component is the Condor Execution Service, which
runs the necessary daemons to act as a Condor execution node. These daemons
will advertise the node as an available resource on which jobs can be run."

§6.1.4 attributes part of the elastic overhead to "the registration process,
which is the additional time required for the service to become fully
operational as the running daemons register themselves with the grid
management service" — modelled here as ``registration_delay_s`` between the
VM reaching RUNNING and the node appearing in the scheduler.

:class:`ExecutionService` is the guest program for one Condor-exec VM;
:class:`VirtualCluster` is the application-side manager that the Service
Manager's elasticity actions drive (deploy → new service; undeploy → drain
and shut down).
"""

from __future__ import annotations

from typing import Optional

from ..cloud import VEEM, DeploymentDescriptor, VirtualMachine
from ..sim import Environment, TraceLog
from .scheduler import CondorScheduler, ExecutionNodeHandle

__all__ = ["ExecutionService", "VirtualCluster", "CondorExecDriver"]


class ExecutionService:
    """The startd daemons inside one Condor execution VM."""

    def __init__(self, env: Environment, vm: VirtualMachine,
                 scheduler: CondorScheduler, *,
                 registration_delay_s: float = 20.0,
                 transfer_mb_per_s: float = 50.0,
                 trace: Optional[TraceLog] = None):
        if registration_delay_s < 0:
            raise ValueError("registration delay must be non-negative")
        self.env = env
        self.vm = vm
        self.scheduler = scheduler
        self.registration_delay_s = registration_delay_s
        self.trace = trace if trace is not None else scheduler.trace
        self.node = ExecutionNodeHandle(
            name=f"startd@{vm.vm_id}", transfer_mb_per_s=transfer_mb_per_s,
        )
        self.registered = False
        env.process(self._boot_sequence(), name=f"startd:{vm.vm_id}")
        env.process(self._watch_failure(), name=f"startd-watch:{vm.vm_id}")

    def _boot_sequence(self):
        # Wait for the guest OS, then for the daemons to come up and
        # advertise the node to the schedd.
        if not self.vm.on_running.processed:
            yield self.vm.on_running
        yield self.env.timeout(self.registration_delay_s)
        if not self.vm.is_active:
            return  # VM was killed while the daemons were starting
        self.scheduler.register_node(self.node)
        self.registered = True
        self.trace.emit("exec-service", "registered", vm=self.vm.vm_id,
                        node=self.node.name)

    def _watch_failure(self):
        # A crashed VM takes its daemons with it: the node vanishes from the
        # schedd and any running job is requeued elsewhere.
        if not self.vm.on_stopped.processed:
            yield self.vm.on_stopped
        from ..cloud import VMState
        if self.vm.state is VMState.FAILED:
            self.scheduler.node_failed(self.node)
            self.registered = False

    def drain(self) -> None:
        """Begin orderly removal: no new matches, deregister when idle."""
        if self.registered and self.node.name in self.scheduler.nodes:
            self.scheduler.drain_node(self.node)
        self.registered = False


class VirtualCluster:
    """The elastic Condor cluster: VMs ↔ execution services glue.

    This is the application-level counterpart of the elasticity actions: the
    Service Manager invokes :meth:`deploy_instance` / :meth:`release_instance`
    via the VEEM, and the cluster keeps the scheduler's node set consistent
    with the VM pool. It also exposes the instance-count KPI
    (``uk.ucl.condor.exec.instances.size``) used in the paper's rule.
    """

    def __init__(self, env: Environment, veem: VEEM,
                 scheduler: CondorScheduler,
                 descriptor_template: DeploymentDescriptor, *,
                 registration_delay_s: float = 20.0,
                 trace: Optional[TraceLog] = None):
        self.env = env
        self.veem = veem
        self.scheduler = scheduler
        self.template = descriptor_template
        self.registration_delay_s = registration_delay_s
        self.trace = trace if trace is not None else scheduler.trace
        self.services: list[ExecutionService] = []
        self._seq = 0

    # -- KPI -----------------------------------------------------------------
    @property
    def instance_count(self) -> int:
        """Active (live VM) execution instances, pending ones included —
        counting in-flight deployments keeps the rule from re-firing for the
        same queue spike on every evaluation tick."""
        return sum(1 for s in self.services if s.vm.is_active)

    @property
    def registered_count(self) -> int:
        return self.scheduler.node_count

    # -- elasticity actions -----------------------------------------------------
    def attach_vm(self, vm: VirtualMachine) -> ExecutionService:
        """Wrap an externally submitted VM as a cluster execution service.

        Used by the Service Manager integration, where the lifecycle manager
        generates the deployment descriptor (so the Association invariant
        holds) and the cluster only supplies the guest-software glue.
        """
        service = ExecutionService(
            self.env, vm, self.scheduler,
            registration_delay_s=self.registration_delay_s,
            trace=self.trace,
        )
        self.services.append(service)
        return service

    def deploy_instance(self) -> ExecutionService:
        """Action ``deployVM(uk.ucl.condor.exec.ref)``: one more exec VM."""
        self._seq += 1
        descriptor = DeploymentDescriptor(
            name=f"{self.template.name}-{self._seq}",
            memory_mb=self.template.memory_mb,
            cpu=self.template.cpu,
            disk_source=self.template.disk_source,
            networks=self.template.networks,
            customisation=dict(self.template.customisation),
            service_id=self.template.service_id,
            component_id=self.template.component_id,
        )
        vm = self.veem.submit(descriptor)
        service = ExecutionService(
            self.env, vm, self.scheduler,
            registration_delay_s=self.registration_delay_s,
            trace=self.trace,
        )
        self.services.append(service)
        self.trace.emit("cluster", "instance.deploy", vm=vm.vm_id,
                        instances=self.instance_count)
        return service

    def release_instance(self) -> Optional[ExecutionService]:
        """Action ``undeployVM``: drain one node and stop its VM.

        Prefers idle nodes; a busy node finishes its current job first
        (Condor would otherwise evict and re-run the job — needlessly
        wasteful when downsizing on a shrinking queue).
        """
        handle = self.scheduler.pick_node_to_drain()
        service = None
        if handle is not None:
            service = next(
                (s for s in self.services if s.node is handle), None)
        if service is None:
            # Nothing registered yet: fall back to an unregistered live VM
            # (covers killing instances that are still provisioning).
            service = next(
                (s for s in reversed(self.services)
                 if s.vm.is_active and not s.registered), None)
            if service is None:
                return None
        self.services.remove(service)
        # Drain synchronously so back-to-back release calls never pick the
        # same node twice; capture the drained event before draining because
        # an idle node deregisters (and fires the callback) immediately.
        drained = None
        if service.registered or service.node.name in self.scheduler.nodes:
            drained = self.env.event()
            service.node.on_drained = (
                lambda _n, ev=drained: ev.succeed())
        service.drain()
        self.env.process(self._teardown(service, drained),
                         name=f"teardown:{service.vm.vm_id}")
        self.trace.emit("cluster", "instance.release", vm=service.vm.vm_id,
                        instances=self.instance_count)
        return service

    def release_all(self) -> int:
        """Drain the whole cluster (end-of-service deallocation)."""
        count = 0
        while self.release_instance() is not None:
            count += 1
        return count

    def _teardown(self, service: ExecutionService, drained):
        vm = service.vm
        if drained is not None and not drained.processed:
            yield drained
        if not vm.is_active:
            return
        if not vm.on_running.processed:
            # VM still provisioning: let it finish booting, then kill it.
            yield vm.on_running
        yield self.veem.shutdown(vm)

    @property
    def all_stopped(self) -> bool:
        return self.instance_count == 0 and self.scheduler.node_count == 0


class CondorExecDriver:
    """:class:`~repro.core.service_manager.lifecycle.ComponentDriver` adapter
    binding the elastic Condor component to a :class:`VirtualCluster`.

    The Service Lifecycle Manager generates descriptors and enforces bounds;
    this driver supplies the application mechanics — startd registration on
    deploy, drain-before-shutdown on release.
    """

    def __init__(self, cluster: VirtualCluster):
        self.cluster = cluster

    def deploy(self, descriptor) -> VirtualMachine:
        vm = self.cluster.veem.submit(descriptor)
        return self.cluster.attach_vm(vm).vm

    def release(self) -> Optional[VirtualMachine]:
        service = self.cluster.release_instance()
        return service.vm if service is not None else None
