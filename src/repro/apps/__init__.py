"""Example application models exercising the manifest language's features."""

from .sap import (
    DI_INSTANCES_KPI,
    SESSIONS_KPI,
    DialogInstanceDriver,
    SAPConfig,
    SAPDeployment,
    SessionWorkload,
    WebDispatcher,
    deploy_sap,
    drive_sessions,
    sap_manifest,
)

__all__ = [
    "DI_INSTANCES_KPI",
    "SESSIONS_KPI",
    "DialogInstanceDriver",
    "SAPConfig",
    "SAPDeployment",
    "SessionWorkload",
    "WebDispatcher",
    "deploy_sap",
    "drive_sessions",
    "sap_manifest",
]
