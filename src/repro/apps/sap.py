"""The §3 motivating example: an SAP-style three-tier ERP system.

"SAP ERP systems have a multi-tiered software architecture with a relational
database layer. On top of the database is an application layer that has a
Central Instance ... Moreover SAP applications have a number of Dialog
Instances, which are application servers responsible for handling business
logic ... A Web Dispatcher may be used to balance workloads between multiple
dialog instances."

Architectural constraints reproduced from §3:

* the Central Instance and the DBMS must be **co-located**;
* the Central Instance **cannot be replicated**;
* Dialog Instances are replicated to accommodate demand, driven by the
  ``com.sap.webdispatcher.kpis.sessions`` KPI (§4.2.1's running example: the
  dispatcher's simultaneous web sessions, which SAP reports on query because
  its protocols are proprietary — the monitoring agent bridges that gap).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..cloud import VEEM, DeploymentDescriptor, VirtualMachine
from ..core.manifest import ManifestBuilder, ServiceManifest
from ..core.service_manager import ComponentDriver, ManagedService, ServiceManager
from ..monitoring import MonitoringAgent
from ..sim import Environment, RandomStreams, SeriesRecorder

__all__ = [
    "SAPConfig",
    "sap_manifest",
    "WebDispatcher",
    "DialogInstanceDriver",
    "SessionWorkload",
    "SAPDeployment",
    "deploy_sap",
]

SESSIONS_KPI = "com.sap.webdispatcher.kpis.sessions"
DI_INSTANCES_KPI = "com.sap.di.instances.size"


@dataclass(frozen=True)
class SAPConfig:
    """Sizing and elasticity parameters for the modelled SAP system."""

    #: concurrent sessions one Dialog Instance handles comfortably
    sessions_per_di: int = 100
    max_dialog_instances: int = 8
    min_dialog_instances: int = 1
    monitoring_period_s: float = 30.0
    #: DI registration time after its VM boots (app server start + RFC join)
    di_registration_s: float = 30.0

    def __post_init__(self) -> None:
        if self.sessions_per_di <= 0:
            raise ValueError("sessions_per_di must be positive")
        if not 1 <= self.min_dialog_instances <= self.max_dialog_instances:
            raise ValueError("bad dialog-instance bounds")


def sap_manifest(cfg: Optional[SAPConfig] = None) -> ServiceManifest:
    """The SAP system's service definition manifest."""
    cfg = cfg or SAPConfig()
    b = ManifestBuilder("sap-erp")
    b.network("internal", description="application LAN segment")
    b.network("dmz", description="browser-facing HTTP", public=True)

    b.component("DBMS", image_mb=8192, cpu=2, memory_mb=6144,
                networks=["internal"], startup_order=0,
                info="relational database layer (I/O and memory intensive)")
    b.component("CentralInstance", image_mb=4096, cpu=2, memory_mb=4096,
                networks=["internal"], startup_order=1, replicable=False,
                info="synchronisation, registration, spooling, DB gateway",
                customisation={"db_host": "${ip.internal.DBMS}"})
    b.component("WebDispatcher", image_mb=1024, cpu=1, memory_mb=1024,
                networks=["internal", "dmz"], startup_order=2,
                info="session load balancer")
    b.component("DialogInstance", image_mb=4096, cpu=2, memory_mb=3072,
                networks=["internal"], startup_order=3,
                initial=cfg.min_dialog_instances,
                minimum=cfg.min_dialog_instances,
                maximum=cfg.max_dialog_instances,
                info="business-logic application server (CPU intensive)",
                customisation={
                    "ci_host": "${ip.internal.CentralInstance}",
                    "db_host": "${ip.internal.DBMS}",
                })

    # §3: "the Central Instance and the database need to be co-located".
    b.colocate("CentralInstance", "DBMS")

    b.application("sap-erp-app")
    b.kpi("WebDispatcher", "WebDispatcher", SESSIONS_KPI,
          frequency_s=cfg.monitoring_period_s, units="sessions", default=0)
    b.kpi("DialogInstances", "DialogInstance", DI_INSTANCES_KPI,
          frequency_s=cfg.monitoring_period_s,
          default=cfg.min_dialog_instances)

    b.rule(
        "ScaleDialogInstancesUp",
        f"(@{SESSIONS_KPI} / {cfg.sessions_per_di} > @{DI_INSTANCES_KPI}) "
        f"&& (@{DI_INSTANCES_KPI} < {cfg.max_dialog_instances})",
        "deployVM(DialogInstance)",
    )
    b.rule(
        "ScaleDialogInstancesDown",
        f"(@{SESSIONS_KPI} / {cfg.sessions_per_di} < @{DI_INSTANCES_KPI} - 1)"
        f" && (@{DI_INSTANCES_KPI} > {cfg.min_dialog_instances})",
        "undeployVM(DialogInstance)",
        cooldown_s=60.0,
    )
    return b.build()


class WebDispatcher:
    """Session-level model of the SAP Web Dispatcher.

    Tracks active sessions and the registered Dialog Instances serving them;
    reports the overload ratio (sessions per DI capacity) as a
    quality-of-service proxy.
    """

    def __init__(self, env: Environment, cfg: SAPConfig):
        self.env = env
        self.cfg = cfg
        self.active_sessions = 0
        self.dialog_instances: list[str] = []
        self.series = SeriesRecorder(env)
        self.series.record("sessions", 0)
        self.series.record("dialog_instances", 0)
        self.rejected_sessions = 0

    # -- DI registration -----------------------------------------------------
    def register_di(self, name: str) -> None:
        if name in self.dialog_instances:
            raise ValueError(f"dialog instance {name!r} already registered")
        self.dialog_instances.append(name)
        self.series.record("dialog_instances", len(self.dialog_instances))

    def deregister_di(self, name: str) -> None:
        self.dialog_instances.remove(name)
        self.series.record("dialog_instances", len(self.dialog_instances))

    # -- session lifecycle -----------------------------------------------------
    @property
    def capacity(self) -> int:
        return len(self.dialog_instances) * self.cfg.sessions_per_di

    @property
    def load_ratio(self) -> float:
        """Sessions per unit of capacity; >1 means overload (degraded QoS)."""
        if self.capacity == 0:
            return math.inf if self.active_sessions else 0.0
        return self.active_sessions / self.capacity

    def open_session(self) -> bool:
        """Admit a session; hard-reject at 2× capacity (connection errors)."""
        if self.capacity == 0 or self.active_sessions >= 2 * self.capacity:
            self.rejected_sessions += 1
            return False
        self.active_sessions += 1
        self.series.record("sessions", self.active_sessions)
        return True

    def close_session(self) -> None:
        if self.active_sessions <= 0:
            raise ValueError("no session to close")
        self.active_sessions -= 1
        self.series.record("sessions", self.active_sessions)


class DialogInstanceDriver(ComponentDriver):
    """Component driver binding DI VMs to the dispatcher's server pool."""

    def __init__(self, env: Environment, veem: VEEM,
                 dispatcher: WebDispatcher, cfg: SAPConfig):
        self.env = env
        self.veem = veem
        self.dispatcher = dispatcher
        self.cfg = cfg
        self._vms: list[VirtualMachine] = []

    def deploy(self, descriptor: DeploymentDescriptor) -> VirtualMachine:
        vm = self.veem.submit(descriptor)
        self._vms.append(vm)
        self.env.process(self._guest(vm), name=f"di-guest:{vm.vm_id}")
        return vm

    def _guest(self, vm: VirtualMachine):
        if not vm.on_running.processed:
            yield vm.on_running
        yield self.env.timeout(self.cfg.di_registration_s)
        if vm.is_active:
            self.dispatcher.register_di(vm.vm_id)

    def release(self) -> Optional[VirtualMachine]:
        vm = next((v for v in reversed(self._vms) if v.is_active), None)
        if vm is None:
            return None
        self._vms.remove(vm)
        self.env.process(self._stop(vm), name=f"di-stop:{vm.vm_id}")
        return vm

    def _stop(self, vm: VirtualMachine):
        if not vm.on_running.processed:
            yield vm.on_running
        if vm.vm_id in self.dispatcher.dialog_instances:
            self.dispatcher.deregister_di(vm.vm_id)
        if vm.state.value == "running":
            yield self.veem.shutdown(vm)


@dataclass(frozen=True)
class SessionWorkload:
    """A piecewise-constant session arrival profile.

    ``phases`` is a sequence of (duration_s, arrival_rate_per_s) segments;
    sessions last ``session_duration_s`` on average (exponential).
    """

    phases: tuple[tuple[float, float], ...] = (
        (1800.0, 0.05),    # quiet morning
        (3600.0, 0.50),    # business peak
        (1800.0, 0.05),    # wind-down
    )
    session_duration_s: float = 600.0
    random_seed: int = 11

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("need at least one phase")
        if any(d <= 0 or r < 0 for d, r in self.phases):
            raise ValueError("bad phase")
        if self.session_duration_s <= 0:
            raise ValueError("session duration must be positive")

    @property
    def total_duration_s(self) -> float:
        return sum(d for d, _ in self.phases)


def drive_sessions(env: Environment, dispatcher: WebDispatcher,
                   workload: SessionWorkload):
    """Process: generate the session load against the dispatcher."""
    rng = RandomStreams(workload.random_seed).stream("sessions")

    def session(duration: float):
        yield env.timeout(duration)
        dispatcher.close_session()

    for duration, rate in workload.phases:
        phase_end = env.now + duration
        while env.now < phase_end:
            if rate <= 0:
                yield env.timeout(phase_end - env.now)
                break
            gap = float(rng.exponential(1.0 / rate))
            if env.now + gap >= phase_end:
                yield env.timeout(phase_end - env.now)
                break
            yield env.timeout(gap)
            if dispatcher.open_session():
                length = float(rng.exponential(workload.session_duration_s))
                env.process(session(length), name="session")


@dataclass
class SAPDeployment:
    """Handle for a deployed SAP system: service + dispatcher + agent."""

    service: ManagedService
    dispatcher: WebDispatcher
    agent: MonitoringAgent
    cfg: SAPConfig

    @property
    def dialog_instance_count(self) -> int:
        return self.service.instance_count("DialogInstance")


def deploy_sap(env: Environment, sm: ServiceManager,
               cfg: Optional[SAPConfig] = None, *,
               service_id: str = "sap-1") -> SAPDeployment:
    """Deploy the SAP manifest with its application glue and agent."""
    cfg = cfg or SAPConfig()
    dispatcher = WebDispatcher(env, cfg)
    manifest = sap_manifest(cfg)
    driver = DialogInstanceDriver(env, sm.veem, dispatcher, cfg)
    service = sm.deploy(manifest, service_id=service_id,
                        drivers={"DialogInstance": driver})
    agent = MonitoringAgent(env, service_id=service_id,
                            component="WebDispatcher", network=sm.network)
    agent.expose(SESSIONS_KPI, lambda: dispatcher.active_sessions,
                 frequency_s=cfg.monitoring_period_s, units="sessions")
    agent.expose(DI_INSTANCES_KPI,
                 lambda: service.instance_count("DialogInstance"),
                 frequency_s=cfg.monitoring_period_s)
    return SAPDeployment(service=service, dispatcher=dispatcher,
                         agent=agent, cfg=cfg)
